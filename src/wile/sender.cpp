#include "wile/sender.hpp"

#include <algorithm>

#include "dot11/frame.hpp"
#include "dot11/mgmt.hpp"

namespace wile::core {

namespace {
// Phase labels matching the legend of Figure 3b.
constexpr const char* kPhaseSleep = "Sleep";
constexpr const char* kPhaseInit = "MC/WiFi init";
constexpr const char* kPhaseTx = "Tx";
constexpr const char* kPhaseRxWindow = "RxWindow";
}  // namespace

Sender::Sender(sim::Scheduler& scheduler, sim::Medium& medium, sim::Position position,
               SenderConfig config, Rng rng)
    : scheduler_(scheduler),
      medium_(medium),
      config_(std::move(config)),
      rng_(rng),
      timeline_(config_.power.supply),
      tracker_(scheduler, timeline_, config_.power.radio_tx, config_.power.tx_ramp),
      codec_(config_.key ? Codec{*config_.key} : Codec{}) {
  if (config_.mac.is_zero()) {
    config_.mac = MacAddress::from_seed(0xB13C000ULL + config_.device_id);
  }
  sequence_ = config_.initial_sequence;
  timeline_.set_max_segments(config_.timeline_max_segments);
  node_id_ = medium_.attach(this, position);
  sim::CsmaConfig csma_cfg;
  csma_cfg.tx_power_dbm = config_.tx_power_dbm;
  csma_cfg.band = config_.band;
  csma_ = std::make_unique<sim::Csma>(scheduler_, medium_, node_id_, rng_.fork(), csma_cfg);
  csma_->set_tx_listener([this](Duration airtime, phy::WifiRate) {
    tracker_.on_tx_start(airtime);
    trace_end(telemetry::Phase::Csma);  // deferral over, frame on the air
  });

  // Precompute the constant beacon-body prefix: timestamp placeholder is
  // patched per send; SSID (hidden unless spoofed), rates and channel
  // never change for a device.
  dot11::Beacon prototype;
  prototype.beacon_interval_tu = config_.beacon_interval_tu;
  prototype.capability = dot11::Capability::kEss | dot11::Capability::kShortSlot;
  prototype.ies.add(dot11::make_ssid_ie(config_.spoofed_ssid));  // "" = hidden
  prototype.ies.add(dot11::make_supported_rates_ie(dot11::default_bg_rates()));
  prototype.ies.add(dot11::make_ds_param_ie(6));
  body_prefix_ = prototype.encode();

  timeline_.set_current(scheduler_.now(), config_.power.deep_sleep, kPhaseSleep);
}

bool Sender::rx_enabled() const {
  return phase_ == Phase::RxWindow && !medium_.transmitting(node_id_);
}

void Sender::send_now(Bytes data, SendCallback done) {
  if (phase_ != Phase::DeepSleep) {
    throw std::logic_error("wile::Sender: send_now requires deep sleep");
  }
  begin_cycle(std::move(data), std::move(done));
}

void Sender::start_duty_cycle(PayloadProvider provider, SendCallback per_cycle) {
  if (!provider) throw std::invalid_argument("wile::Sender: null payload provider");
  duty_cycling_ = true;
  provider_ = std::move(provider);
  per_cycle_ = std::move(per_cycle);
  schedule_next_cycle();
}

void Sender::stop_duty_cycle() { duty_cycling_ = false; }

Duration Sender::jittered_period() {
  double period_us = static_cast<double>(config_.period.count());
  period_us *= 1.0 + config_.clock_ppm_error * 1e-6;
  if (config_.wake_jitter.count() > 0) {
    period_us += static_cast<double>(
        rng_.range(-config_.wake_jitter.count(), config_.wake_jitter.count()));
  }
  return Duration{static_cast<std::int64_t>(period_us)};
}

void Sender::schedule_next_cycle() {
  scheduler_.schedule_in(jittered_period(), [this] {
    if (!duty_cycling_) return;
    // Maintain the wake cadence: the next timer runs from this wake-up,
    // not from cycle completion (the deep-sleep timer on the ESP32 is
    // armed before sleeping, so the period is wake-to-wake).
    schedule_next_cycle();
    if (phase_ != Phase::DeepSleep) return;  // previous cycle still busy
    // Reliable mode: don't consume fresh sensor data while a
    // retransmission is pending.
    if (!will_retransmit()) trace_instant(telemetry::Phase::Sample);
    Bytes data = will_retransmit() ? Bytes{} : provider_();
    begin_cycle(std::move(data), [this](const SendReport& report) {
      if (per_cycle_) per_cycle_(report);
    });
  });
}

Bytes Sender::build_beacon_mpdu(const dot11::InfoElement& vendor_ie) {
  // Patch the precomputed prefix: timestamp (first 8 bytes of the body).
  Bytes body = body_prefix_;
  const auto ts = static_cast<std::uint64_t>(scheduler_.now().us());
  for (int i = 0; i < 8; ++i) body[i] = static_cast<std::uint8_t>(ts >> (8 * i));
  // Append the data-bearing vendor element.
  ByteWriter ie_w(2 + vendor_ie.data.size());
  ie_w.u8(static_cast<std::uint8_t>(vendor_ie.id));
  ie_w.u8(static_cast<std::uint8_t>(vendor_ie.data.size()));
  ie_w.bytes(vendor_ie.data);
  const Bytes ie_bytes = ie_w.take();
  body.insert(body.end(), ie_bytes.begin(), ie_bytes.end());

  dot11::MacHeader h;
  h.fc = dot11::FrameControl::mgmt(dot11::MgmtSubtype::Beacon);
  h.addr1 = MacAddress::broadcast();
  h.addr2 = config_.mac;
  h.addr3 = config_.mac;  // the device itself is the (fake) BSSID
  h.set_sequence(seq_ctl_++ & 0x0fff);
  return dot11::assemble_mpdu(h, body);
}

Bytes Sender::build_ssid_stuffed_mpdu(const std::string& stuffed_ssid) {
  dot11::Beacon beacon;
  beacon.timestamp_us = static_cast<std::uint64_t>(scheduler_.now().us());
  beacon.beacon_interval_tu = config_.beacon_interval_tu;
  beacon.capability = dot11::Capability::kEss | dot11::Capability::kShortSlot;
  beacon.ies.add(dot11::make_ssid_ie(stuffed_ssid));  // data in the SSID itself
  beacon.ies.add(dot11::make_supported_rates_ie(dot11::default_bg_rates()));
  beacon.ies.add(dot11::make_ds_param_ie(6));

  dot11::MacHeader h;
  h.fc = dot11::FrameControl::mgmt(dot11::MgmtSubtype::Beacon);
  h.addr1 = MacAddress::broadcast();
  h.addr2 = config_.mac;
  h.addr3 = config_.mac;
  h.set_sequence(seq_ctl_++ & 0x0fff);
  return dot11::assemble_mpdu(h, beacon.encode());
}

RedundancyTier Sender::active_tier() const {
  if (config_.adaptation && !config_.adaptation->tiers.empty()) {
    return config_.adaptation->tiers[std::min(tier_, config_.adaptation->tiers.size() - 1)];
  }
  RedundancyTier tier;
  tier.repeats = config_.repeats;
  tier.fec_parity = config_.fec_parity;
  tier.recovery_k = config_.recovery_k;
  tier.recovery_stride = config_.recovery_stride;
  return tier;
}

std::optional<Message> Sender::maybe_recovery_message(const RedundancyTier& tier) {
  const auto k = static_cast<std::size_t>(
      std::clamp<int>(tier.recovery_k, 0, static_cast<int>(kMaxRecoveryGroup)));
  if (k == 0 || recent_sent_.size() < k) return std::nullopt;
  const int stride = tier.recovery_stride > 0 ? tier.recovery_stride
                                              : std::max<int>(1, static_cast<int>(k) / 2);
  if (msgs_since_recovery_ < stride) return std::nullopt;
  msgs_since_recovery_ = 0;

  RecoveryPayload payload;
  payload.base_sequence = recent_sent_[recent_sent_.size() - k].sequence;
  for (std::size_t i = recent_sent_.size() - k; i < recent_sent_.size(); ++i) {
    const RecentMessage& r = recent_sent_[i];
    payload.entries.push_back(
        {r.type, static_cast<std::uint16_t>(std::min<std::size_t>(r.data.size(), 0xffff))});
    if (r.data.size() > payload.xor_block.size()) payload.xor_block.resize(r.data.size());
  }
  for (std::size_t i = recent_sent_.size() - k; i < recent_sent_.size(); ++i) {
    const Bytes& d = recent_sent_[i].data;
    for (std::size_t b = 0; b < d.size(); ++b) payload.xor_block[b] ^= d[b];
  }

  Message m;
  m.device_id = config_.device_id;
  m.sequence = recovery_sequence_++;
  m.type = MessageType::Recovery;
  m.data = encode_recovery_payload(payload);
  return m;
}

void Sender::begin_cycle(Bytes data, SendCallback done) {
  ++cycles_;
  cycle_done_ = std::move(done);
  wake_time_ = scheduler_.now();
  trace_begin(telemetry::Phase::Cycle);
  trace_begin(telemetry::Phase::Wake);
  cycle_airtime_ = Duration{0};
  cycle_beacons_ = 0;
  cycle_downlinks_ = 0;
  cycle_failed_ = false;
  cycle_acked_ = false;
  cycle_retransmission_ = false;
  cycle_parity_beacons_ = 0;
  cycle_parity_airtime_ = Duration{0};

  // No-controller fallback: with ChannelReports silent for long enough,
  // stop waiting for closed-loop guidance and run the configured
  // open-loop schedule.
  if (config_.adaptation && config_.adaptation->fallback_after_cycles > 0 &&
      !fallback_active_ &&
      cycles_since_report_ >=
          static_cast<std::uint64_t>(config_.adaptation->fallback_after_cycles) &&
      !config_.adaptation->tiers.empty()) {
    fallback_active_ = true;
    tier_ = std::min(config_.adaptation->fallback_tier, config_.adaptation->tiers.size() - 1);
  }
  ++cycles_since_report_;
  const RedundancyTier tier = active_tier();

  Message message;
  bool fresh = false;
  if (will_retransmit()) {
    // Reliable mode: repeat the unacknowledged message, same sequence.
    message = *unacked_;
    cycle_retransmission_ = true;
  } else {
    if (config_.reliable && unacked_) {
      // Retry budget exhausted: abandon and move on.
      ++dropped_unacked_;
      unacked_.reset();
      unacked_attempts_ = 0;
    }
    message.device_id = config_.device_id;
    message.sequence = sequence_++;
    message.type = MessageType::Telemetry;
    message.data = std::move(data);
    message.rx_window = config_.rx_window;
    fresh = true;
  }
  if (config_.reliable) {
    unacked_ = message;
    ++unacked_attempts_;
  }

  const bool fec_usable = !config_.ssid_stuffing;
  if (fresh && fec_usable) {
    recent_sent_.push_back({message.sequence, message.type, message.data});
    if (recent_sent_.size() > kMaxRecoveryGroup) {
      recent_sent_.erase(recent_sent_.begin());
    }
    ++msgs_since_recovery_;
  }

  std::vector<CycleMpdu> mpdus;
  trace_instant(telemetry::Phase::Encode);
  try {
    std::vector<CycleMpdu> once;
    if (config_.ssid_stuffing) {
      if (auto stuffed = encode_ssid_stuffed(message)) {
        once.push_back({build_ssid_stuffed_mpdu(*stuffed), false});
      } else {
        cycle_failed_ = true;  // message does not fit the SSID field
      }
    } else {
      const auto elements = codec_.encode(message, tier.fec_parity);
      // With parity on, a fragmented message's last element is the
      // parity (encode() only appends one when there are >= 2 data
      // fragments, so a parity train always has >= 3 elements).
      const std::size_t parity_from =
          tier.fec_parity && elements.size() >= 3 ? elements.size() - 1 : elements.size();
      for (std::size_t i = 0; i < elements.size(); ++i) {
        once.push_back({build_beacon_mpdu(elements[i]), i >= parity_from});
      }
    }
    // Open-loop reliability: repeat the whole fragment train. Receivers
    // drop the duplicates by (device, sequence).
    const int repeats = std::max(tier.repeats, 1);
    for (int r = 0; r < repeats; ++r) {
      mpdus.insert(mpdus.end(), once.begin(), once.end());
    }
    // Cross-cycle FEC: one (unrepeated) recovery beacon when due.
    if (fresh && fec_usable) {
      if (auto recovery = maybe_recovery_message(tier)) {
        for (const auto& ie : codec_.encode(*recovery)) {
          mpdus.push_back({build_beacon_mpdu(ie), true});
        }
        ++recovery_beacons_sent_;
      }
    }
  } catch (const std::invalid_argument&) {
    cycle_failed_ = true;
  }

  phase_ = Phase::Init;
  tracker_.set_phase(config_.power.cpu_active, kPhaseInit);
  const Duration init =
      config_.power.boot_from_deep_sleep + config_.power.wifi_inject_init;
  scheduler_.schedule_in(init, [this, mpdus = std::move(mpdus)]() mutable {
    trace_end(telemetry::Phase::Wake);
    if (cycle_failed_ || mpdus.empty()) {
      finish_cycle();
      return;
    }
    phase_ = Phase::Tx;
    tracker_.set_phase(config_.power.cpu_active, kPhaseTx);
    trace_begin(telemetry::Phase::Tx);
    inject_fragments(std::move(mpdus), 0);
  });
}

void Sender::inject_fragments(std::vector<CycleMpdu> mpdus, std::size_t index) {
  if (index >= mpdus.size()) {
    trace_end(telemetry::Phase::Tx);
    after_last_beacon();
    return;
  }
  const Bytes& mpdu = mpdus[index].mpdu;
  const Duration airtime = phy::frame_airtime(mpdu.size(), config_.rate, config_.band);
  cycle_airtime_ += airtime;
  ++cycle_beacons_;
  ++beacons_sent_total_;
  tx_airtime_total_ += airtime;
  if (mpdus[index].fec) {
    cycle_parity_airtime_ += airtime;
    ++cycle_parity_beacons_;
    ++parity_beacons_total_;
  }

  if (config_.use_csma) {
    trace_begin(telemetry::Phase::Csma);
    csma_->send(mpdu, config_.rate, /*expect_ack=*/false,
                [this, mpdus = std::move(mpdus), index](const sim::Csma::Result&) mutable {
                  inject_fragments(std::move(mpdus), index + 1);
                });
  } else {
    // Raw injection: fire immediately, no carrier sense (E7 ablation).
    sim::TxRequest req;
    req.mpdu = mpdu;
    req.airtime = airtime;
    req.tx_power_dbm = config_.tx_power_dbm;
    req.rate = config_.rate;
    req.on_complete = [this, mpdus = std::move(mpdus), index]() mutable {
      inject_fragments(std::move(mpdus), index + 1);
    };
    tracker_.on_tx_start(airtime);
    medium_.transmit(node_id_, std::move(req));
  }
}

void Sender::after_last_beacon() {
  if (!config_.rx_window) {
    finish_cycle();
    return;
  }
  // Two-way extension: idle briefly, then listen for the announced
  // window. The radio draws RX current for the whole window — this is
  // the energy cost E8 measures against always-on listening.
  phase_ = Phase::Tx;  // offset gap: radio on but not yet listening
  tracker_.set_phase(config_.power.cpu_active, kPhaseRxWindow);
  scheduler_.schedule_in(config_.rx_window->offset, [this] {
    phase_ = Phase::RxWindow;
    tracker_.set_phase(config_.power.radio_rx, kPhaseRxWindow);
    trace_begin(telemetry::Phase::RxWindow);
    scheduler_.schedule_in(config_.rx_window->duration, [this] {
      trace_end(telemetry::Phase::RxWindow);
      finish_cycle();
    });
  });
}

void Sender::finish_cycle() {
  phase_ = Phase::Shutdown;
  tracker_.set_phase(config_.power.cpu_active, kPhaseInit);
  scheduler_.schedule_in(config_.power.shutdown_time, [this] {
    phase_ = Phase::DeepSleep;
    tracker_.set_phase(config_.power.deep_sleep, kPhaseSleep);

    SendReport report;
    report.success = !cycle_failed_ && cycle_beacons_ > 0;
    report.sequence = sequence_ - 1;
    report.beacons_sent = cycle_beacons_;
    report.tx_airtime = cycle_airtime_;
    const Duration tx_time =
        cycle_airtime_ + Duration{config_.power.tx_ramp.count() * cycle_beacons_};
    report.tx_only_energy = tx_power_draw() * tx_time;
    report.parity_beacons = cycle_parity_beacons_;
    report.parity_airtime = cycle_parity_airtime_;
    report.parity_tx_energy =
        tx_power_draw() * (cycle_parity_airtime_ +
                           Duration{config_.power.tx_ramp.count() * cycle_parity_beacons_});
    report.tier = tier_;
    report.active_time = scheduler_.now() - wake_time_;
    report.cycle_energy = timeline_.energy_between(wake_time_, scheduler_.now());
    report.downlinks_received = cycle_downlinks_;
    report.acked = cycle_acked_;
    report.retransmission = cycle_retransmission_;
    if (!report.success) ++cycles_failed_total_;
    if (cycle_active_hist_ != nullptr) {
      cycle_active_hist_->record(static_cast<std::uint64_t>(report.active_time.count()));
    }
    trace_instant(telemetry::Phase::Sleep);
    trace_end(telemetry::Phase::Cycle);
    if (cycle_done_) {
      auto cb = std::move(cycle_done_);
      cycle_done_ = {};
      cb(report);
    }
  });
}

void Sender::on_frame(const sim::RxFrame& frame) {
  if (phase_ != Phase::RxWindow) return;
  auto parsed = dot11::parse_mpdu(frame.mpdu);
  if (!parsed || !parsed->fcs_ok) return;
  if (!parsed->header.fc.is_mgmt(dot11::MgmtSubtype::Beacon)) return;
  auto beacon = dot11::Beacon::decode(parsed->body);
  if (!beacon) return;
  for (const Fragment& f : codec_.decode_all(beacon->ies)) {
    if (f.device_id != config_.device_id) continue;
    if (f.type == MessageType::ChannelReport) {
      if (auto report = decode_channel_report(f.data)) on_channel_report(*report);
      continue;
    }
    if (f.type == MessageType::Ack) {
      // Reliable mode: match the acknowledged sequence number.
      if (config_.reliable && unacked_ && f.data.size() == 4) {
        ByteReader r{f.data};
        if (r.u32le() == unacked_->sequence) {
          cycle_acked_ = true;
          unacked_.reset();
          unacked_attempts_ = 0;
        }
      }
      continue;
    }
    if (f.type != MessageType::Downlink) continue;
    Message m;
    m.device_id = f.device_id;
    m.sequence = f.sequence;
    m.type = f.type;
    m.data = f.data;
    ++cycle_downlinks_;
    ++downlinks_total_;
    if (downlink_cb_) downlink_cb_(m);
  }
}

void Sender::on_channel_report(const ChannelReport& report) {
  ++reports_received_;
  cycles_since_report_ = 0;
  fallback_active_ = false;  // a controller is audible again
  if (!config_.adaptation || config_.adaptation->tiers.empty()) return;
  const AdaptationConfig& a = *config_.adaptation;

  const double loss_pct = static_cast<double>(report.loss_permille) / 10.0;
  if (loss_pct >= a.raise_loss_pct) {
    clear_streak_ = 0;
    if (++raise_streak_ >= std::max(a.raise_after, 1)) {
      raise_streak_ = 0;
      if (tier_ + 1 < a.tiers.size()) {
        ++tier_;
        ++tier_raises_;
      }
    }
  } else if (loss_pct <= a.clear_loss_pct) {
    raise_streak_ = 0;
    if (++clear_streak_ >= std::max(a.clear_after, 1)) {
      clear_streak_ = 0;
      if (tier_ > 0) {
        --tier_;
        ++tier_clears_;
      }
    }
  } else {
    // Hysteresis dead zone: hold the tier, restart both streaks.
    raise_streak_ = 0;
    clear_streak_ = 0;
  }
}

void Sender::publish_metrics(telemetry::MetricsRegistry& registry,
                             const std::string& prefix) {
  registry.bind_counter(prefix + ".cycles", &cycles_);
  registry.bind_counter(prefix + ".cycles_failed", &cycles_failed_total_);
  registry.bind_counter(prefix + ".tx.beacons", &beacons_sent_total_);
  registry.bind_counter(prefix + ".tx.parity_beacons", &parity_beacons_total_);
  registry.bind_counter_fn(prefix + ".tx.airtime_us", [this] {
    return static_cast<std::uint64_t>(tx_airtime_total_.count());
  });
  registry.bind_counter(prefix + ".rx.downlinks", &downlinks_total_);
  registry.bind_counter(prefix + ".fec.recovery_beacons", &recovery_beacons_sent_);
  registry.bind_counter(prefix + ".adapt.reports_received", &reports_received_);
  registry.bind_counter(prefix + ".adapt.tier_raises", &tier_raises_);
  registry.bind_counter(prefix + ".adapt.tier_clears", &tier_clears_);
  registry.bind_counter(prefix + ".reliable.dropped_unacked", &dropped_unacked_);
  registry.bind_gauge_fn(prefix + ".adapt.tier",
                         [this] { return static_cast<double>(tier_); });
  // Integrated energy since simulation start. PowerTimeline folds old
  // segment history on fleet runs but keeps the from-zero integral exact
  // (see PowerTimeline::set_max_segments), so this gauge is always the
  // true lifetime energy.
  registry.bind_gauge_fn(prefix + ".energy_j", [this] {
    return timeline_.energy_between(TimePoint{}, scheduler_.now()).value;
  });
  cycle_active_hist_ = registry.histogram(prefix + ".cycle_active_us");
}

}  // namespace wile::core
