#include "wile/scenario.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace wile::sim {

namespace {

std::string node_prefix(NodeId id, const char* component) {
  return "node." + std::to_string(id) + "." + component;
}

}  // namespace

ScenarioBuilder& ScenarioBuilder::payload(Bytes fixed) {
  make_provider_ = [fixed = std::move(fixed)](int) -> core::Sender::PayloadProvider {
    return [fixed] { return fixed; };
  };
  return *this;
}

std::unique_ptr<Scenario> ScenarioBuilder::build() const {
  if (n_devices_ < 0) throw std::invalid_argument("ScenarioBuilder: devices < 0");
  if (mode_ == TxMode::Wur && wur_opts_.group_id == 0 &&
      n_devices_ > static_cast<int>(phy::WurPhy::kMaxId)) {
    // Unicast WUR IDs are 12-bit; a bigger fleet would alias wake frames.
    throw std::invalid_argument(
        "ScenarioBuilder: unicast WUR round-robin supports at most 4095 "
        "devices (12-bit ID space); use a group_id for larger fleets");
  }
  if (threads_ > 0) {
    // These subsystems hold a reference to THE scheduler/medium and run
    // unsynchronized callbacks; the sharded engine has neither a single
    // core nor a single thread. Reject at build time, loudly.
    if (trace_ || sample_period_ || configure_faults_ || !rules_.empty()) {
      throw std::invalid_argument(
          "ScenarioBuilder: trace/sample_every/configure_faults/rules require "
          "the serial engine (threads(0))");
    }
    if (shards_ == 0) throw std::invalid_argument("ScenarioBuilder: shards == 0");
  }
  // Scenario's constructor is private; go through new directly.
  return std::unique_ptr<Scenario>(new Scenario(*this));
}

Scenario::Scenario(const ScenarioBuilder& b)
    : medium_{scheduler_, phy::Channel{b.channel_}, Rng{b.medium_seed_}},
      telemetry_enabled_(b.telemetry_),
      // Derived, not equal to any seed the medium/devices use: the fault
      // injector's rng must not alias theirs.
      fault_seed_(b.master_seed_ ^ 0x0FA1'7000),
      mode_(b.mode_),
      user_on_message_(b.on_message_),
      user_on_adv_(b.on_adv_) {
  if (b.threads_ > 0) {
    build_parallel(b);
    return;
  }
  if (b.loss_floor_) medium_.set_loss_floor(*b.loss_floor_);
  tracer_.set_max_events(b.trace_max_events_);
  tracer_.set_enabled(b.trace_);
  if (!b.rules_.empty()) {
    rules_engine_ = std::make_unique<rules::Engine>(b.rules_);
    if (b.rules_extractor_) rules_engine_->set_value_extractor(*b.rules_extractor_);
    if (b.rules_poll_period_) schedule_rules_poll(*b.rules_poll_period_);
  }
  if (mode_ == TxMode::Ble) {
    // A BLE fleet shares the environment ritual (grid, stagger, gateway
    // slots, telemetry names) but none of the Wi-LE node types.
    build_ble(b);
    return;
  }

  // --- devices: exact scale_fleet wiring order -------------------------------
  // Master fork per device and the staggered-start schedule_at are
  // interleaved inside one loop, in this order, because that is the
  // historical construction sequence the determinism oracle pinned.
  const int n = b.n_devices_;
  const int side =
      n > 0 ? static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n)))) : 1;
  const double extent = side * b.spacing_m_;
  const auto period_us =
      static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                     b.period_)
                                     .count());

  Rng master{b.master_seed_};
  senders_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    core::SenderConfig cfg;
    cfg.device_id = static_cast<std::uint32_t>(i + 1);
    cfg.period = b.period_;
    cfg.wake_jitter = b.wake_jitter_;
    cfg.timeline_max_segments = b.timeline_max_segments_;
    if (b.harvesting_) cfg.harvesting = b.harvesting_;
    if (mode_ == TxMode::Wur) {
      // Mode-preset default; configure_sender below can still override
      // any of it per device (e.g. a custom receiver model).
      core::WurCompanionConfig wur;
      wur.group_id = b.wur_opts_.group_id;
      wur.receiver = b.wur_opts_.receiver;
      cfg.wur = wur;
    }
    if (b.configure_sender_) b.configure_sender_(cfg, i);

    const Position pos = b.place_device_
                             ? b.place_device_(i)
                             : Position{(i % side) * b.spacing_m_,
                                        (i / side) * b.spacing_m_};
    // The fork happens whether or not device_rng overrides it, so
    // toggling the override never shifts the master sequence for later
    // consumers.
    Rng forked = master.fork();
    Rng rng = b.device_rng_ ? b.device_rng_(i) : std::move(forked);
    senders_.push_back(std::make_unique<core::Sender>(scheduler_, medium_, pos,
                                                      cfg, std::move(rng)));
    core::Sender* s = senders_.back().get();
    if (b.trace_) s->set_tracer(&tracer_);

    if (!b.auto_start_) continue;
    core::Sender::PayloadProvider provider =
        b.make_provider_ ? b.make_provider_(i)
                         : [] { return Bytes(16, 0xA5); };
    core::Sender::SendCallback per_cycle;
    if (b.on_send_report_) {
      per_cycle = [fn = b.on_send_report_, i](const core::SendReport& r) {
        fn(i, r);
      };
    }
    if (cfg.wur) {
      // The AP owns the cadence: arm the companion receiver instead of
      // scheduling a local duty-cycle timer (no stagger — the device
      // transmits only when woken).
      s->arm_wur(std::move(provider), std::move(per_cycle));
    } else if (b.stagger_) {
      // Stagger duty-cycle starts uniformly across one period so the
      // fleet doesn't wake in a single thundering herd at t=0.
      const auto start_us = static_cast<std::int64_t>(
          (static_cast<std::uint64_t>(i) * period_us) /
          static_cast<std::uint64_t>(n));
      scheduler_.schedule_at(
          TimePoint{usec(start_us)},
          [s, provider = std::move(provider), per_cycle = std::move(per_cycle)] {
            s->start_duty_cycle(std::move(provider), std::move(per_cycle));
          });
    } else {
      s->start_duty_cycle(std::move(provider), std::move(per_cycle));
    }
  }

  // --- gateways --------------------------------------------------------------
  // Environment-only scenarios (devices(0)) get no implicit gateway;
  // any fleet gets at least one.
  const int n_gw = b.n_gateways_
                       ? *b.n_gateways_
                       : (n > 0 ? std::max(1, n / std::max(1, b.gateway_every_)) : 0);
  receivers_.reserve(static_cast<std::size_t>(n_gw));
  for (int k = 0; k < n_gw; ++k) {
    core::ReceiverConfig cfg;
    if (b.configure_gateway_) b.configure_gateway_(cfg, k);
    const double c = (k + 0.5) * extent / n_gw;  // along the diagonal
    const Position pos = b.place_gateway_ ? b.place_gateway_(k) : Position{c, c};
    receivers_.push_back(
        std::make_unique<core::Receiver>(scheduler_, medium_, pos, cfg));
    receivers_.back()->set_message_callback(
        [this](const core::Message& msg, const core::RxMeta& meta) {
          ++messages_;
          if (rules_engine_) rules_engine_->on_message(msg, meta.rssi_dbm, meta.received_at);
          if (user_on_message_) user_on_message_(msg, meta);
        });
  }

  // --- WUR access point ------------------------------------------------------
  // Built after the fleet so round-robin can collect the derived WUR
  // IDs in device order. Transmit-only (rx_enabled false), so attaching
  // it never adds medium RNG draws for frames it merely overhears.
  if (mode_ == TxMode::Wur && n > 0) {
    const Position ap_pos = b.wur_opts_.ap_position
                                ? *b.wur_opts_.ap_position
                                : Position{extent / 2.0, extent / 2.0};
    // Derived seed: the AP's CSMA backoff stream must alias neither the
    // device forks nor the medium stream.
    wur_ap_ = std::make_unique<ap::WurScheduler>(scheduler_, medium_, ap_pos,
                                                 Rng{b.master_seed_ ^ 0x11BA'0000},
                                                 b.wur_opts_.scheduler);
    if (b.auto_start_) {
      const Duration cadence =
          b.wur_opts_.cadence.count() > 0 ? b.wur_opts_.cadence : b.period_;
      if (b.wur_opts_.group_id != 0) {
        wur_ap_->start_group_cadence(b.wur_opts_.group_id, cadence);
      } else {
        std::vector<std::uint16_t> ids;
        ids.reserve(senders_.size());
        for (auto& s : senders_) ids.push_back(s->wur_id());
        wur_ap_->start_round_robin(std::move(ids), cadence);
      }
    }
  }

  // --- fault schedule --------------------------------------------------------
  // Runs after every device exists (so the injector already holds the
  // fleet's energy targets) and before telemetry, matching the hand
  // wiring order the bit-identity tests pin.
  if (b.configure_faults_) b.configure_faults_(faults());

  // --- telemetry bindings ----------------------------------------------------
  // Everything above ran without touching the registry, so a disabled
  // scenario is byte-identical to a pre-telemetry build: zero registry
  // entries, zero extra events, zero extra RNG draws.
  if (!telemetry_enabled_) return;

  registry_.bind_counter_fn("scheduler.events_run",
                            [this] { return scheduler_.events_run(); });
  registry_.bind_gauge_fn("scheduler.pending_events", [this] {
    return static_cast<double>(scheduler_.pending_events());
  });
  registry_.bind_gauge_fn("sim.time_us", [this] {
    return static_cast<double>(scheduler_.now().since_epoch().count());
  });
  medium_.publish_metrics(registry_);
  registry_.bind_counter_fn("fleet.messages", [this] { return messages_; });
  registry_.bind_gauge_fn("fleet.devices",
                          [this] { return static_cast<double>(senders_.size()); });
  registry_.bind_gauge_fn("fleet.gateways", [this] {
    return static_cast<double>(receivers_.size());
  });
  if (wur_ap_) {
    registry_.bind_counter_fn("wur.ap.wakes_sent",
                              [this] { return wur_ap_->wakes_sent(); });
    registry_.bind_gauge_fn("wur.ap.tx_airtime_us", [this] {
      return static_cast<double>(wur_ap_->tx_airtime_total().count());
    });
  }
  if (rules_engine_) rules_engine_->publish_metrics(registry_, "rules");

  if (b.per_node_) {
    for (auto& s : senders_) {
      s->publish_metrics(registry_, node_prefix(s->node_id(), "sender"));
    }
    for (auto& r : receivers_) {
      r->publish_metrics(registry_, node_prefix(r->node_id(), "receiver"));
    }
  }

  if (b.sample_period_) {
    sampler_ = std::make_unique<telemetry::PeriodicSampler<Scheduler>>(
        scheduler_, registry_, *b.sample_period_);
    sampler_->start();
  }
}

// Sharded build path. Deliberately mirrors the serial loop line for
// line — same SenderConfig defaults, same master.fork() per device in
// index order, same staggered start times — so the only difference is
// WHICH event core each node attaches to. Shard assignment is a pure
// function of position and shard count, never of thread count, which
// is what makes digests comparable across threads={1,2,4}.
void Scenario::build_parallel(const ScenarioBuilder& b) {
  if (mode_ == TxMode::Ble) {
    build_ble_parallel(b);
    return;
  }
  const int n = b.n_devices_;
  const std::size_t n_shards = b.shards_;
  const int side =
      n > 0 ? static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n)))) : 1;
  const double extent = std::max(side * b.spacing_m_, 1.0);
  const auto period_us =
      static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                     b.period_)
                                     .count());

  // Per-shard event cores. The medium RNG master forks once per shard
  // in shard order: every shard draws an independent loss/PER stream,
  // and the set of streams depends only on the shard count.
  Rng medium_master{b.medium_seed_};
  shard_runtimes_.reserve(n_shards);
  for (std::size_t s = 0; s < n_shards; ++s) {
    ShardRuntime rt;
    rt.scheduler = std::make_unique<Scheduler>();
    rt.medium = std::make_unique<Medium>(*rt.scheduler, phy::Channel{b.channel_},
                                         medium_master.fork());
    if (b.loss_floor_) rt.medium->set_loss_floor(*b.loss_floor_);
    shard_runtimes_.push_back(std::move(rt));
  }

  // Stripe partition for node assignment; the engine below builds its
  // router over the same [0, extent) so spans and assignment agree.
  ShardRouter partition{n_shards, 0.0, extent};

  Rng master{b.master_seed_};
  senders_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    core::SenderConfig cfg;
    cfg.device_id = static_cast<std::uint32_t>(i + 1);
    cfg.period = b.period_;
    cfg.wake_jitter = b.wake_jitter_;
    cfg.timeline_max_segments = b.timeline_max_segments_;
    if (b.harvesting_) cfg.harvesting = b.harvesting_;
    if (mode_ == TxMode::Wur) {
      core::WurCompanionConfig wur;
      wur.group_id = b.wur_opts_.group_id;
      wur.receiver = b.wur_opts_.receiver;
      cfg.wur = wur;
    }
    if (b.configure_sender_) b.configure_sender_(cfg, i);

    const Position pos = b.place_device_
                             ? b.place_device_(i)
                             : Position{(i % side) * b.spacing_m_,
                                        (i / side) * b.spacing_m_};
    Rng forked = master.fork();
    Rng rng = b.device_rng_ ? b.device_rng_(i) : std::move(forked);
    ShardRuntime& rt = shard_runtimes_[partition.shard_of(pos.x_m)];
    senders_.push_back(std::make_unique<core::Sender>(*rt.scheduler, *rt.medium,
                                                      pos, cfg, std::move(rng)));
    core::Sender* s = senders_.back().get();

    if (!b.auto_start_) continue;
    core::Sender::PayloadProvider provider =
        b.make_provider_ ? b.make_provider_(i)
                         : [] { return Bytes(16, 0xA5); };
    core::Sender::SendCallback per_cycle;
    if (b.on_send_report_) {
      per_cycle = [fn = b.on_send_report_, i](const core::SendReport& r) {
        fn(i, r);
      };
    }
    if (cfg.wur) {
      s->arm_wur(std::move(provider), std::move(per_cycle));
    } else if (b.stagger_) {
      const auto start_us = static_cast<std::int64_t>(
          (static_cast<std::uint64_t>(i) * period_us) /
          static_cast<std::uint64_t>(n));
      rt.scheduler->schedule_at(
          TimePoint{usec(start_us)},
          [s, provider = std::move(provider), per_cycle = std::move(per_cycle)] {
            s->start_duty_cycle(std::move(provider), std::move(per_cycle));
          });
    } else {
      s->start_duty_cycle(std::move(provider), std::move(per_cycle));
    }
  }

  const int n_gw = b.n_gateways_
                       ? *b.n_gateways_
                       : (n > 0 ? std::max(1, n / std::max(1, b.gateway_every_)) : 0);
  receivers_.reserve(static_cast<std::size_t>(n_gw));
  for (int k = 0; k < n_gw; ++k) {
    core::ReceiverConfig cfg;
    if (b.configure_gateway_) b.configure_gateway_(cfg, k);
    const double c = (k + 0.5) * extent / n_gw;  // along the diagonal
    const Position pos = b.place_gateway_ ? b.place_gateway_(k) : Position{c, c};
    ShardRuntime& rt = shard_runtimes_[partition.shard_of(pos.x_m)];
    receivers_.push_back(
        std::make_unique<core::Receiver>(*rt.scheduler, *rt.medium, pos, cfg));
    // Count into the owning shard's tally: the callback runs on that
    // shard's worker thread, and per-shard counters need no atomics.
    receivers_.back()->set_message_callback(
        [this, counter = &rt.messages](const core::Message& msg,
                                       const core::RxMeta& meta) {
          ++*counter;
          if (user_on_message_) user_on_message_(msg, meta);
        });
  }

  // WUR AP: attaches to the shard its position falls in; wake frames to
  // devices on other shards ride the engine's boundary-transmission
  // phantoms like any other cross-shard traffic.
  if (mode_ == TxMode::Wur && n > 0) {
    const Position ap_pos = b.wur_opts_.ap_position
                                ? *b.wur_opts_.ap_position
                                : Position{extent / 2.0, extent / 2.0};
    ShardRuntime& rt = shard_runtimes_[partition.shard_of(ap_pos.x_m)];
    wur_ap_ = std::make_unique<ap::WurScheduler>(*rt.scheduler, *rt.medium, ap_pos,
                                                 Rng{b.master_seed_ ^ 0x11BA'0000},
                                                 b.wur_opts_.scheduler);
    if (b.auto_start_) {
      const Duration cadence =
          b.wur_opts_.cadence.count() > 0 ? b.wur_opts_.cadence : b.period_;
      if (b.wur_opts_.group_id != 0) {
        wur_ap_->start_group_cadence(b.wur_opts_.group_id, cadence);
      } else {
        std::vector<std::uint16_t> ids;
        ids.reserve(senders_.size());
        for (auto& s : senders_) ids.push_back(s->wur_id());
        wur_ap_->start_round_robin(std::move(ids), cadence);
      }
    }
  }

  std::vector<ParallelEngine::Shard> shards;
  shards.reserve(n_shards);
  for (auto& rt : shard_runtimes_) {
    shards.push_back(ParallelEngine::Shard{rt.scheduler.get(), rt.medium.get()});
  }
  engine_ = std::make_unique<ParallelEngine>(std::move(shards), 0.0, extent,
                                             b.window_, b.threads_);

  if (!telemetry_enabled_) return;

  // Aggregate bindings keep the serial metric names so every consumer
  // (export schema, dashboards) reads sharded runs unchanged.
  registry_.bind_counter_fn("scheduler.events_run", [this] { return events_run(); });
  registry_.bind_gauge_fn("scheduler.pending_events", [this] {
    std::size_t pending = 0;
    for (const auto& rt : shard_runtimes_) pending += rt.scheduler->pending_events();
    return static_cast<double>(pending);
  });
  registry_.bind_gauge_fn("sim.time_us", [this] {
    return static_cast<double>(now().since_epoch().count());
  });
  registry_.bind_counter_fn("medium.transmissions",
                            [this] { return medium_stats().transmissions; });
  registry_.bind_counter_fn("medium.deliveries",
                            [this] { return medium_stats().deliveries; });
  registry_.bind_counter_fn("medium.collision_losses",
                            [this] { return medium_stats().collision_losses; });
  registry_.bind_counter_fn("medium.channel_losses",
                            [this] { return medium_stats().channel_losses; });
  registry_.bind_counter_fn("medium.nodes", [this] {
    std::uint64_t nodes = 0;
    for (const auto& rt : shard_runtimes_) nodes += rt.medium->node_count();
    return nodes;
  });
  registry_.bind_counter_fn("fleet.messages", [this] { return messages(); });
  registry_.bind_gauge_fn("fleet.devices",
                          [this] { return static_cast<double>(senders_.size()); });
  registry_.bind_gauge_fn("fleet.gateways", [this] {
    return static_cast<double>(receivers_.size());
  });
  if (wur_ap_) {
    registry_.bind_counter_fn("wur.ap.wakes_sent",
                              [this] { return wur_ap_->wakes_sent(); });
    registry_.bind_gauge_fn("wur.ap.tx_airtime_us", [this] {
      return static_cast<double>(wur_ap_->tx_airtime_total().count());
    });
  }

  registry_.bind_gauge_fn("parallel.threads", [this] {
    return static_cast<double>(engine_->threads());
  });
  registry_.bind_gauge_fn("parallel.shards", [this] {
    return static_cast<double>(shard_runtimes_.size());
  });
  registry_.bind_gauge_fn("parallel.window_us", [this] {
    return static_cast<double>(engine_->window().count());
  });
  for (std::size_t s = 0; s < n_shards; ++s) {
    const std::string prefix = "parallel.shard" + std::to_string(s);
    registry_.bind_counter_fn(prefix + ".windows",
                              [this, s] { return engine_->shard_stats()[s].windows; });
    registry_.bind_counter_fn(prefix + ".barrier_stalls", [this, s] {
      return engine_->shard_stats()[s].barrier_stalls;
    });
    registry_.bind_counter_fn(prefix + ".boundary_tx_in", [this, s] {
      return engine_->shard_stats()[s].boundary_tx_in;
    });
    registry_.bind_counter_fn(prefix + ".boundary_tx_out", [this, s] {
      return engine_->shard_stats()[s].boundary_tx_out;
    });
  }

  if (b.per_node_) {
    for (auto& s : senders_) {
      s->publish_metrics(registry_, node_prefix(s->node_id(), "sender"));
    }
    for (auto& r : receivers_) {
      r->publish_metrics(registry_, node_prefix(r->node_id(), "receiver"));
    }
  }
}

// TxMode::Ble, serial engine. Shares the environment ritual with the
// Wi-LE loop — same grid, same diagonal gateway slots, same staggered
// start times, same master.fork() per device in index order (so device
// i draws the same RNG stream in every mode) — but populates the fleet
// with BleAdvertisers and the gateway slots with BleScanners.
void Scenario::build_ble(const ScenarioBuilder& b) {
  const int n = b.n_devices_;
  const int side =
      n > 0 ? static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n)))) : 1;
  const double extent = side * b.spacing_m_;
  const auto period_us =
      static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                     b.period_)
                                     .count());

  Rng master{b.master_seed_};
  ble_advertisers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    ble::BleAdvertiserConfig cfg = b.ble_opts_.advertiser;
    cfg.address = MacAddress::from_seed(0xB1E0'0000u + static_cast<std::uint64_t>(i) + 1);
    cfg.adv_interval = b.period_;
    cfg.adv_delay_max = b.ble_opts_.adv_delay_max;

    const Position pos = b.place_device_
                             ? b.place_device_(i)
                             : Position{(i % side) * b.spacing_m_,
                                        (i / side) * b.spacing_m_};
    Rng rng = master.fork();  // advDelay stream; same fork discipline
    ble_advertisers_.push_back(std::make_unique<ble::BleAdvertiser>(
        scheduler_, medium_, pos, cfg, std::move(rng)));
    ble::BleAdvertiser* a = ble_advertisers_.back().get();

    if (!b.auto_start_) continue;
    ble::BleAdvertiser::PayloadProvider provider =
        b.make_provider_ ? b.make_provider_(i)
                         : [] { return Bytes(16, 0xA5); };
    if (b.stagger_) {
      const auto start_us = static_cast<std::int64_t>(
          (static_cast<std::uint64_t>(i) * period_us) /
          static_cast<std::uint64_t>(n));
      scheduler_.schedule_at(TimePoint{usec(start_us)},
                             [a, provider = std::move(provider)] {
                               a->start(std::move(provider));
                             });
    } else {
      a->start(std::move(provider));
    }
  }

  const int n_gw = b.n_gateways_
                       ? *b.n_gateways_
                       : (n > 0 ? std::max(1, n / std::max(1, b.gateway_every_)) : 0);
  ble_scanners_.reserve(static_cast<std::size_t>(n_gw));
  for (int k = 0; k < n_gw; ++k) {
    const double c = (k + 0.5) * extent / n_gw;  // along the diagonal
    const Position pos = b.place_gateway_ ? b.place_gateway_(k) : Position{c, c};
    ble_scanners_.push_back(
        std::make_unique<ble::BleScanner>(scheduler_, medium_, pos));
    ble_scanners_.back()->set_callback(
        [this, k](const ble::AdvertisingPdu& pdu, double rssi) {
          ++messages_;
          if (user_on_adv_) user_on_adv_(k, pdu, rssi);
        });
  }

  if (!telemetry_enabled_) return;
  registry_.bind_counter_fn("scheduler.events_run",
                            [this] { return scheduler_.events_run(); });
  registry_.bind_gauge_fn("scheduler.pending_events", [this] {
    return static_cast<double>(scheduler_.pending_events());
  });
  registry_.bind_gauge_fn("sim.time_us", [this] {
    return static_cast<double>(scheduler_.now().since_epoch().count());
  });
  medium_.publish_metrics(registry_);
  registry_.bind_counter_fn("fleet.messages", [this] { return messages_; });
  registry_.bind_gauge_fn("fleet.devices", [this] {
    return static_cast<double>(ble_advertisers_.size());
  });
  registry_.bind_gauge_fn("fleet.gateways", [this] {
    return static_cast<double>(ble_scanners_.size());
  });

  if (b.sample_period_) {
    sampler_ = std::make_unique<telemetry::PeriodicSampler<Scheduler>>(
        scheduler_, registry_, *b.sample_period_);
    sampler_->start();
  }
}

// TxMode::Ble on the sharded engine: same shard striping as the Wi-LE
// parallel path (assignment is a pure function of position and shard
// count), with per-shard accepted-PDU tallies.
void Scenario::build_ble_parallel(const ScenarioBuilder& b) {
  const int n = b.n_devices_;
  const std::size_t n_shards = b.shards_;
  const int side =
      n > 0 ? static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n)))) : 1;
  const double extent = std::max(side * b.spacing_m_, 1.0);
  const auto period_us =
      static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                     b.period_)
                                     .count());

  Rng medium_master{b.medium_seed_};
  shard_runtimes_.reserve(n_shards);
  for (std::size_t s = 0; s < n_shards; ++s) {
    ShardRuntime rt;
    rt.scheduler = std::make_unique<Scheduler>();
    rt.medium = std::make_unique<Medium>(*rt.scheduler, phy::Channel{b.channel_},
                                         medium_master.fork());
    if (b.loss_floor_) rt.medium->set_loss_floor(*b.loss_floor_);
    shard_runtimes_.push_back(std::move(rt));
  }
  ShardRouter partition{n_shards, 0.0, extent};

  Rng master{b.master_seed_};
  ble_advertisers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    ble::BleAdvertiserConfig cfg = b.ble_opts_.advertiser;
    cfg.address = MacAddress::from_seed(0xB1E0'0000u + static_cast<std::uint64_t>(i) + 1);
    cfg.adv_interval = b.period_;
    cfg.adv_delay_max = b.ble_opts_.adv_delay_max;

    const Position pos = b.place_device_
                             ? b.place_device_(i)
                             : Position{(i % side) * b.spacing_m_,
                                        (i / side) * b.spacing_m_};
    Rng rng = master.fork();
    ShardRuntime& rt = shard_runtimes_[partition.shard_of(pos.x_m)];
    ble_advertisers_.push_back(std::make_unique<ble::BleAdvertiser>(
        *rt.scheduler, *rt.medium, pos, cfg, std::move(rng)));
    ble::BleAdvertiser* a = ble_advertisers_.back().get();

    if (!b.auto_start_) continue;
    ble::BleAdvertiser::PayloadProvider provider =
        b.make_provider_ ? b.make_provider_(i)
                         : [] { return Bytes(16, 0xA5); };
    if (b.stagger_) {
      const auto start_us = static_cast<std::int64_t>(
          (static_cast<std::uint64_t>(i) * period_us) /
          static_cast<std::uint64_t>(n));
      rt.scheduler->schedule_at(TimePoint{usec(start_us)},
                                [a, provider = std::move(provider)] {
                                  a->start(std::move(provider));
                                });
    } else {
      a->start(std::move(provider));
    }
  }

  const int n_gw = b.n_gateways_
                       ? *b.n_gateways_
                       : (n > 0 ? std::max(1, n / std::max(1, b.gateway_every_)) : 0);
  ble_scanners_.reserve(static_cast<std::size_t>(n_gw));
  for (int k = 0; k < n_gw; ++k) {
    const double c = (k + 0.5) * extent / n_gw;  // along the diagonal
    const Position pos = b.place_gateway_ ? b.place_gateway_(k) : Position{c, c};
    ShardRuntime& rt = shard_runtimes_[partition.shard_of(pos.x_m)];
    ble_scanners_.push_back(
        std::make_unique<ble::BleScanner>(*rt.scheduler, *rt.medium, pos));
    ble_scanners_.back()->set_callback(
        [this, k, counter = &rt.messages](const ble::AdvertisingPdu& pdu,
                                          double rssi) {
          ++*counter;
          if (user_on_adv_) user_on_adv_(k, pdu, rssi);
        });
  }

  std::vector<ParallelEngine::Shard> shards;
  shards.reserve(n_shards);
  for (auto& rt : shard_runtimes_) {
    shards.push_back(ParallelEngine::Shard{rt.scheduler.get(), rt.medium.get()});
  }
  engine_ = std::make_unique<ParallelEngine>(std::move(shards), 0.0, extent,
                                             b.window_, b.threads_);

  if (!telemetry_enabled_) return;
  registry_.bind_counter_fn("scheduler.events_run", [this] { return events_run(); });
  registry_.bind_gauge_fn("sim.time_us", [this] {
    return static_cast<double>(now().since_epoch().count());
  });
  registry_.bind_counter_fn("medium.transmissions",
                            [this] { return medium_stats().transmissions; });
  registry_.bind_counter_fn("medium.deliveries",
                            [this] { return medium_stats().deliveries; });
  registry_.bind_counter_fn("medium.collision_losses",
                            [this] { return medium_stats().collision_losses; });
  registry_.bind_counter_fn("medium.channel_losses",
                            [this] { return medium_stats().channel_losses; });
  registry_.bind_counter_fn("fleet.messages", [this] { return messages(); });
  registry_.bind_gauge_fn("fleet.devices", [this] {
    return static_cast<double>(ble_advertisers_.size());
  });
  registry_.bind_gauge_fn("fleet.gateways", [this] {
    return static_cast<double>(ble_scanners_.size());
  });
  registry_.bind_gauge_fn("parallel.threads", [this] {
    return static_cast<double>(engine_->threads());
  });
  registry_.bind_gauge_fn("parallel.shards", [this] {
    return static_cast<double>(shard_runtimes_.size());
  });
  registry_.bind_gauge_fn("parallel.window_us", [this] {
    return static_cast<double>(engine_->window().count());
  });
}

Scenario::~Scenario() = default;

void Scenario::require_serial(const char* what) const {
  if (engine_) {
    throw std::logic_error(std::string("Scenario: ") + what +
                           " requires the serial engine (built with threads(0))");
  }
}

Scheduler& Scenario::scheduler() {
  require_serial("scheduler()");
  return scheduler_;
}

Medium& Scenario::medium() {
  require_serial("medium()");
  return medium_;
}

std::uint64_t Scenario::events_run() const {
  if (engine_) return engine_->total_events_run();
  return scheduler_.events_run();
}

Medium::Stats Scenario::medium_stats() const {
  if (engine_) return engine_->total_medium_stats();
  return medium_.stats();
}

TimePoint Scenario::now() const {
  if (engine_) return engine_->now();
  return scheduler_.now();
}

std::uint64_t Scenario::messages() const {
  std::uint64_t total = messages_;
  for (const auto& rt : shard_runtimes_) total += rt.messages;
  return total;
}

void Scenario::run_until(TimePoint deadline) {
  if (engine_) {
    engine_->run_until(deadline);
  } else {
    scheduler_.run_until(deadline);
  }
}

FaultInjector& Scenario::faults() {
  require_serial("faults()");
  if (!faults_) {
    faults_ = std::make_unique<FaultInjector>(scheduler_, medium_, Rng{fault_seed_});
    if (telemetry_enabled_) faults_->publish_metrics(registry_);
    // Every harvesting device is an energy-fault target, in device
    // order, so fleet-wide brown-outs / droughts hit the whole fleet
    // without per-scenario wiring.
    for (auto& s : senders_) {
      if (auto* governor = s->energy_governor()) {
        faults_->attach_energy_target(governor);
      }
    }
  }
  return *faults_;
}

void Scenario::attach_invariants(InvariantMonitor& monitor) {
  require_serial("attach_invariants()");
  // Scheduler: simulated time and the event counter only move forward.
  monitor.add_monotone_counter("scheduler.time_us", [this] {
    return static_cast<std::uint64_t>(scheduler_.now().since_epoch().count());
  });
  monitor.add_monotone_counter("scheduler.events_run",
                               [this] { return scheduler_.events_run(); });

  // Frame-buffer leak accounting: every payload allocation alive must be
  // owned by an in-flight transmission. Sweeps run as scheduler events,
  // so no delivery is mid-flight when this is sampled.
  monitor.add_check("medium.frame_buffer_leak", [this]() -> std::optional<std::string> {
    const std::uint64_t live = FrameBuffer::live_buffers();
    const auto in_flight = static_cast<std::uint64_t>(medium_.active_transmissions());
    if (live > in_flight) {
      return std::to_string(live) + " live frame buffers but only " +
             std::to_string(in_flight) + " in-flight transmissions";
    }
    return std::nullopt;
  });

  // Gateways: reassembler partial tables stay bounded, and no (device,
  // sequence) pair is ever delivered twice by the same gateway. The
  // message callback is re-wired through the monitor; the scenario's
  // aggregate counter and any user callback keep working.
  for (auto& r : receivers_) {
    core::Receiver* gw = r.get();
    monitor.add_bounded_gauge(
        "receiver.partial_table_bound",
        [gw] { return static_cast<double>(gw->reassembler_partials()); }, 0.0,
        static_cast<double>(gw->config().max_partials), gw->node_id());
    gw->set_message_callback(
        [this, &monitor, key = static_cast<std::uint32_t>(gw->node_id())](
            const core::Message& msg, const core::RxMeta& meta) {
          ++messages_;
          monitor.on_delivery(key, msg.device_id, msg.sequence, scheduler_.now());
          if (rules_engine_) rules_engine_->on_message(msg, meta.rssi_dbm, meta.received_at);
          if (user_on_message_) user_on_message_(msg, meta);
        });
  }

  for (auto& s : senders_) {
    const core::Sender* dev = s.get();
    // Sequence numbers never run backwards — a brown-out resume that
    // rewound the counter would replay sequences the gateway has seen.
    monitor.add_monotone_counter(
        "sender.sequence_monotone", [dev] { return std::uint64_t{dev->next_sequence()}; },
        dev->node_id());

    if (const power::EnergyGovernor* gov = dev->energy_governor()) {
      // Energy conservation: stored charge can never exceed what the
      // initial charge plus an unfaded harvest could have supplied, nor
      // leave [0, capacity]. projected_charge is const — the oracle
      // never perturbs settlement, so attaching it cannot change a run.
      const auto& hcfg = gov->harvester().config();
      const double capacity = gov->harvester().capacity().value;
      const double initial = capacity * hcfg.initial_charge_fraction;
      const double harvest_w = hcfg.harvest_power.value;
      const double tol = 1e-9 + 1e-6 * capacity;
      monitor.add_check(
          "sender.energy_conservation",
          [this, gov, capacity, initial, harvest_w, tol]() -> std::optional<std::string> {
            const TimePoint now = scheduler_.now();
            const double q = gov->projected_charge(now).value;
            const double elapsed_s =
                static_cast<double>(now.since_epoch().count()) / 1e6;
            const double upper =
                std::min(capacity, initial + harvest_w * elapsed_s) + tol;
            if (q < -tol) {
              return "stored energy negative: " + std::to_string(q) + " J";
            }
            if (q > upper) {
              return "stored energy " + std::to_string(q) +
                     " J exceeds harvestable bound " + std::to_string(upper) + " J";
            }
            return std::nullopt;
          },
          dev->node_id());
    }
  }
}

ChaosTargets Scenario::chaos_targets() {
  require_serial("chaos_targets()");
  ChaosTargets targets;
  targets.faults = &faults();
  targets.device_nodes.reserve(senders_.size());
  targets.clock_drift.reserve(senders_.size());
  targets.energy.reserve(senders_.size());
  for (auto& s : senders_) {
    targets.device_nodes.push_back(s->node_id());
    targets.clock_drift.push_back(
        [dev = s.get()](double ppm) { dev->apply_clock_drift_ppm(ppm); });
    targets.energy.push_back(s->energy_governor());
  }
  for (auto& r : receivers_) targets.gateway_nodes.push_back(r->node_id());
  if (!receivers_.empty()) {
    targets.jammer_position = medium_.position(receivers_.front()->node_id());
  }
  return targets;
}

const std::vector<telemetry::Snapshot>& Scenario::samples() const {
  static const std::vector<telemetry::Snapshot> kEmpty;
  return sampler_ ? sampler_->samples() : kEmpty;
}

std::string Scenario::export_json(telemetry::ExportMeta meta,
                                  bool include_trace_events) {
  const telemetry::Snapshot snap = snapshot();
  return telemetry::to_json(snap, samples(), meta, &tracer_, include_trace_events);
}

void Scenario::schedule_rules_poll(Duration every) {
  scheduler_.schedule_in(every, [this, every] {
    rules_engine_->poll(scheduler_.now());
    schedule_rules_poll(every);
  });
}

void Scenario::stop_all() {
  for (auto& s : senders_) {
    s->stop_duty_cycle();
    s->disarm_wur();
  }
  for (auto& a : ble_advertisers_) a->stop();
  if (wur_ap_) wur_ap_->stop();
}

}  // namespace wile::sim
