// ScenarioBuilder — one setup API for every bench, example and test.
//
// Before this facade every entry point hand-wired the same ritual:
// Scheduler, Medium with a seeded Rng, a grid of Senders forked from a
// master Rng, staggered duty-cycle starts, gateway Receivers, and (since
// the telemetry subsystem) a MetricsRegistry with per-component
// publish_metrics calls. ScenarioBuilder owns that ritual once:
//
//   auto scenario = sim::ScenarioBuilder{}
//                       .devices(1000)
//                       .grid_spacing_m(5)
//                       .gateway_every(2500)
//                       .duty_cycle(seconds(60))
//                       .seed(0xF1EE7C0DE)
//                       .build();
//   scenario->run_for(seconds(600));
//   std::string json = scenario->export_json({.bench = "my_bench"});
//
// The default build() replicates bench/scale_fleet.cpp's historical
// wiring *exactly* — same construction order, same Rng fork sequence,
// same staggered start times — so scenarios are bit-identical to the
// hand-wired setups they replaced (tests/test_telemetry.cpp pins this).
//
// The builder lives in namespace wile::sim because it assembles the
// simulation environment; it is compiled into wile_core because the
// nodes it owns (Sender/Receiver) live there.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ap/wur_scheduler.hpp"
#include "ble/advertiser.hpp"
#include "sim/chaos.hpp"
#include "sim/fault.hpp"
#include "sim/invariants.hpp"
#include "sim/medium.hpp"
#include "sim/parallel.hpp"
#include "sim/scheduler.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/trace.hpp"
#include "util/rng.hpp"
#include "wile/receiver.hpp"
#include "wile/rules/engine.hpp"
#include "wile/sender.hpp"
#include "wile/tx_mode.hpp"

namespace wile::sim {

class ScenarioBuilder;

/// Mode-preset options for TxMode::Wur fleets. The preset gives every
/// device a WUR companion receiver, arms it instead of starting a duty
/// cycle, and stands up one AP-side WurScheduler that owns the wake
/// cadence (round-robin unicast by default, one group wake per cadence
/// when group_id is set).
struct WurFleetOptions {
  ap::WurSchedulerConfig scheduler{};
  /// Wake cadence: one full unicast sweep of the fleet (or one group
  /// wake) per this period. Zero = the builder's duty_cycle() period.
  Duration cadence{};
  /// Non-zero: every device joins this group and the AP sends one
  /// multicast wake per cadence instead of sweeping unicast WUR IDs.
  std::uint16_t group_id = 0;
  /// Companion-receiver model applied to every device.
  power::WurReceiverModel receiver{};
  /// AP position; unset = center of the device grid.
  std::optional<Position> ap_position;
};

/// Mode-preset options for TxMode::Ble fleets: every device becomes a
/// BleAdvertiser on the builder's duty_cycle() period and every gateway
/// slot becomes a BleScanner.
struct BleFleetOptions {
  /// Template advertiser config; the preset overrides address (derived
  /// per device), adv_interval (duty_cycle) and adv_delay_max (below).
  ble::BleAdvertiserConfig advertiser{};
  /// Spec advDelay bound (see BleAdvertiserConfig::adv_delay_max).
  /// The preset default keeps the full 10 ms the spec prescribes —
  /// pure-ALOHA contention is dishonest without it.
  Duration adv_delay_max = msec(10);
};

/// A fully assembled simulation: scheduler, medium, Wi-LE device fleet,
/// gateway receivers, and the telemetry pipeline bound over all of them.
/// Non-movable (components hold references into each other); created via
/// ScenarioBuilder::build() behind a unique_ptr.
class Scenario {
 public:
  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;
  ~Scenario();

  // --- environment -----------------------------------------------------------
  /// The single serial scheduler/medium. Throws std::logic_error in
  /// parallel mode (threads(n>0)): there is no single event core there —
  /// use the aggregate accessors events_run()/medium_stats()/now(), or
  /// shard_schedulers()/shard_mediums() for per-shard access.
  [[nodiscard]] Scheduler& scheduler();
  [[nodiscard]] Medium& medium();
  /// Lazily constructed on first use (so scenarios that never inject
  /// faults pay nothing and schedule nothing). Serial mode only.
  [[nodiscard]] FaultInjector& faults();

  // --- engine-agnostic aggregates --------------------------------------------
  // Valid in both modes; benches and tests read these instead of
  // scheduler()/medium() so the same code drives serial and sharded runs.
  [[nodiscard]] std::uint64_t events_run() const;
  [[nodiscard]] Medium::Stats medium_stats() const;
  [[nodiscard]] TimePoint now() const;
  /// True when built with threads(n>0): the sharded engine is driving.
  [[nodiscard]] bool parallel() const { return engine_ != nullptr; }
  /// Null in serial mode.
  [[nodiscard]] const ParallelEngine* parallel_engine() const { return engine_.get(); }

  // --- chaos harness ---------------------------------------------------------
  /// Wire the standard invariant catalog over this fleet: scheduler
  /// monotonicity, FrameBuffer leak accounting against the medium's
  /// in-flight transmissions, per-gateway reassembler bounds and
  /// per-device sequence uniqueness (the gateway callbacks are re-wired
  /// through the monitor), per-device monotone sequence counters, and —
  /// for harvesting fleets — energy conservation via the governor's
  /// non-perturbing projected charge. The monitor must outlive every
  /// event this scenario runs. Call monitor.start() separately to sweep.
  void attach_invariants(InvariantMonitor& monitor);

  /// Binding for chaos campaigns: the injector plus every device and
  /// gateway node, per-device clock-drift appliers and energy targets.
  /// The generated jammer sits at the first gateway (worst case for
  /// uplink delivery).
  [[nodiscard]] ChaosTargets chaos_targets();

  // --- nodes -----------------------------------------------------------------
  [[nodiscard]] std::vector<std::unique_ptr<core::Sender>>& devices() {
    return senders_;
  }
  [[nodiscard]] std::vector<std::unique_ptr<core::Receiver>>& gateways() {
    return receivers_;
  }
  /// The transmission mode this scenario was built with.
  [[nodiscard]] TxMode tx_mode() const { return mode_; }
  /// BLE fleets (mode(TxMode::Ble)): advertisers replace devices() and
  /// scanners replace gateways(). Empty in the other modes.
  [[nodiscard]] std::vector<std::unique_ptr<ble::BleAdvertiser>>& ble_devices() {
    return ble_advertisers_;
  }
  [[nodiscard]] std::vector<std::unique_ptr<ble::BleScanner>>& ble_scanners() {
    return ble_scanners_;
  }
  /// WUR fleets (mode(TxMode::Wur)): the AP-side wake scheduler that owns
  /// the fleet cadence. Null in the other modes.
  [[nodiscard]] ap::WurScheduler* wur_ap() { return wur_ap_.get(); }
  /// Messages delivered across all gateway receivers (deduplicated per
  /// receiver, summed over receivers — matches the legacy benches'
  /// shared counter). In parallel mode each shard counts its own
  /// gateways (no cross-thread counter contention) and this sums them.
  [[nodiscard]] std::uint64_t messages() const;
  /// The fleet rules engine, or nullptr unless ScenarioBuilder::rules()
  /// configured one. Fed every message each gateway delivers.
  [[nodiscard]] rules::Engine* rules() { return rules_engine_.get(); }

  // --- telemetry -------------------------------------------------------------
  [[nodiscard]] telemetry::MetricsRegistry& metrics() { return registry_; }
  [[nodiscard]] telemetry::Tracer& tracer() { return tracer_; }
  [[nodiscard]] bool telemetry_enabled() const { return telemetry_enabled_; }
  /// Snapshots collected by the periodic sampler (empty unless
  /// sample_every() was configured).
  [[nodiscard]] const std::vector<telemetry::Snapshot>& samples() const;
  /// Whole-registry snapshot at the current simulated time.
  [[nodiscard]] telemetry::Snapshot snapshot() {
    return registry_.snapshot(now());
  }
  /// Serialize the scenario's full telemetry state (snapshot + sampler
  /// series + trace summary) in the wile-telemetry-v1 schema.
  [[nodiscard]] std::string export_json(telemetry::ExportMeta meta,
                                        bool include_trace_events = false);

  // --- running ---------------------------------------------------------------
  void run_until(TimePoint deadline);
  void run_for(Duration d) { run_until(now() + d); }
  /// Stop every device's duty cycle (drain before reading final stats).
  void stop_all();

 private:
  friend class ScenarioBuilder;
  Scenario(const ScenarioBuilder& b);
  void build_parallel(const ScenarioBuilder& b);
  void build_ble(const ScenarioBuilder& b);
  void build_ble_parallel(const ScenarioBuilder& b);
  void require_serial(const char* what) const;

  /// One shard's event core plus its message tally. The schedulers and
  /// mediums live behind unique_ptrs because Medium holds a Scheduler&
  /// and neither is movable.
  struct ShardRuntime {
    std::unique_ptr<Scheduler> scheduler;
    std::unique_ptr<Medium> medium;
    /// Written only by the shard's owning thread (its gateways' message
    /// callbacks), read after run — no atomics needed.
    std::uint64_t messages = 0;
  };

  Scheduler scheduler_;
  Medium medium_;
  std::vector<ShardRuntime> shard_runtimes_;
  std::unique_ptr<ParallelEngine> engine_;
  telemetry::MetricsRegistry registry_;
  telemetry::Tracer tracer_;
  bool telemetry_enabled_ = true;
  std::unique_ptr<telemetry::PeriodicSampler<Scheduler>> sampler_;
  std::unique_ptr<FaultInjector> faults_;
  std::uint64_t fault_seed_ = 0;
  std::vector<std::unique_ptr<core::Sender>> senders_;
  std::vector<std::unique_ptr<core::Receiver>> receivers_;
  TxMode mode_ = TxMode::WiLeBeacon;
  std::vector<std::unique_ptr<ble::BleAdvertiser>> ble_advertisers_;
  std::vector<std::unique_ptr<ble::BleScanner>> ble_scanners_;
  std::unique_ptr<ap::WurScheduler> wur_ap_;
  std::unique_ptr<rules::Engine> rules_engine_;
  std::uint64_t messages_ = 0;
  core::Receiver::MessageCallback user_on_message_;
  std::function<void(int, const ble::AdvertisingPdu&, double)> user_on_adv_;

  void schedule_rules_poll(Duration every);
};

/// Fluent builder. Every knob has the scale_fleet default, so
/// `.devices(n).build()` reproduces the historical bench wiring.
class ScenarioBuilder {
 public:
  /// Number of Wi-LE sender devices (grid-placed, ids 1..n by default).
  ScenarioBuilder& devices(int n) { n_devices_ = n; return *this; }
  // --- transmission mode ------------------------------------------------------
  /// The unified mode preset (default TxMode::WiLeBeacon, which keeps
  /// every pre-existing scenario bit-identical). The preset owns the
  /// cross-cutting defaults for its fleet:
  ///   WiLeBeacon — Senders on local duty-cycle timers + gateway
  ///                Receivers (the historical wiring, unchanged).
  ///   Ble        — BleAdvertisers on the same duty-cycle period (plus
  ///                spec advDelay) + BleScanners at the gateway slots.
  ///   Wur        — Senders with WUR companion receivers, armed and
  ///                deep-sleeping; one AP WurScheduler drives the wake
  ///                cadence; gateway Receivers unchanged.
  ScenarioBuilder& mode(TxMode m) { mode_ = m; return *this; }
  /// Tune the Wur preset (implies mode(TxMode::Wur)).
  ScenarioBuilder& wur(WurFleetOptions opts) {
    mode_ = TxMode::Wur;
    wur_opts_ = std::move(opts);
    return *this;
  }
  /// Tune the Ble preset (implies mode(TxMode::Ble)).
  ScenarioBuilder& ble(BleFleetOptions opts) {
    mode_ = TxMode::Ble;
    ble_opts_ = std::move(opts);
    return *this;
  }
  /// Ble mode: callback for every advertising PDU a scanner accepts
  /// (scanner index, PDU, RSSI). The aggregate messages() counter counts
  /// accepted PDUs regardless.
  ScenarioBuilder& on_adv(
      std::function<void(int, const ble::AdvertisingPdu&, double)> cb) {
    on_adv_ = std::move(cb);
    return *this;
  }
  /// Grid pitch for default placement (square grid, row-major).
  ScenarioBuilder& grid_spacing_m(double m) { spacing_m_ = m; return *this; }
  /// One gateway receiver per this many devices (min 1 gateway), placed
  /// along the grid diagonal.
  ScenarioBuilder& gateway_every(int n) { gateway_every_ = n; return *this; }
  /// Explicit gateway count (overrides gateway_every).
  ScenarioBuilder& gateways(int n) { n_gateways_ = n; return *this; }
  /// Duty-cycle period for every device.
  ScenarioBuilder& duty_cycle(Duration period) { period_ = period; return *this; }
  ScenarioBuilder& wake_jitter(Duration j) { wake_jitter_ = j; return *this; }
  /// Master RNG seed; each device gets master.fork() in construction
  /// order (the scale_fleet discipline).
  ScenarioBuilder& seed(std::uint64_t s) { master_seed_ = s; return *this; }
  /// Medium (propagation/loss) RNG seed, independent of the master.
  ScenarioBuilder& medium_seed(std::uint64_t s) { medium_seed_ = s; return *this; }
  ScenarioBuilder& channel(phy::ChannelConfig cfg) { channel_ = cfg; return *this; }
  /// SNR-independent injected loss floor on the medium (ablations).
  ScenarioBuilder& loss_floor(double p) { loss_floor_ = p; return *this; }
  /// Fixed payload every device sends each cycle.
  ScenarioBuilder& payload(Bytes fixed);
  /// Per-device payload provider factory: called once per device index,
  /// returns that device's per-cycle provider. Overrides payload().
  ScenarioBuilder& payload_provider(
      std::function<core::Sender::PayloadProvider(int)> make) {
    make_provider_ = std::move(make);
    return *this;
  }
  /// Hook to adjust each device's SenderConfig after the defaults are
  /// applied (rx windows, keys, FEC, CSMA, ...).
  ScenarioBuilder& configure_sender(
      std::function<void(core::SenderConfig&, int)> fn) {
    configure_sender_ = std::move(fn);
    return *this;
  }
  /// Intermittent power for the whole fleet: every device runs off this
  /// harvested-capacitor config (configure_sender can still override or
  /// clear it per device — it runs after this default is applied).
  /// Scenario::faults() auto-registers every harvesting device's
  /// EnergyGovernor as an energy-fault target, in device order.
  ScenarioBuilder& harvesting(core::HarvestingConfig cfg) {
    harvesting_ = cfg;
    return *this;
  }
  /// Fault schedule hook: runs once against the scenario's lazily-built
  /// FaultInjector at build time, after every device is constructed and
  /// its energy target registered. Keeps fault wiring inside the
  /// builder so a scripted scenario is one self-contained expression.
  ScenarioBuilder& configure_faults(std::function<void(FaultInjector&)> fn) {
    configure_faults_ = std::move(fn);
    return *this;
  }
  /// Hook to adjust each gateway's ReceiverConfig.
  ScenarioBuilder& configure_gateway(
      std::function<void(core::ReceiverConfig&, int)> fn) {
    configure_gateway_ = std::move(fn);
    return *this;
  }
  /// Override default grid placement.
  ScenarioBuilder& place_device(std::function<Position(int)> fn) {
    place_device_ = std::move(fn);
    return *this;
  }
  /// Override default diagonal gateway placement.
  ScenarioBuilder& place_gateway(std::function<Position(int)> fn) {
    place_gateway_ = std::move(fn);
    return *this;
  }
  /// Override the per-device RNG (default: master.fork() per device).
  /// Legacy setups that pinned explicit per-node seeds use this to stay
  /// bit-identical.
  ScenarioBuilder& device_rng(std::function<Rng(int)> fn) {
    device_rng_ = std::move(fn);
    return *this;
  }
  // --- sharded parallel engine ----------------------------------------------
  /// Run on the sharded parallel engine with this many worker threads.
  /// 0 (default) = the legacy serial engine, bit-identical to every
  /// pre-sharding build. With threads > 0 the fleet is striped across
  /// shards() per-shard schedulers/mediums and advanced in window()
  /// conservative time windows; results depend on the SHARD count, not
  /// the thread count (see sim/parallel.hpp). Parallel scenarios reject
  /// faults()/attach_invariants()/chaos_targets()/trace()/sample_every()
  /// — those subsystems assume one serial event core.
  ScenarioBuilder& threads(unsigned t) { threads_ = t; return *this; }
  /// Spatial stripes (and independent event cores) for the parallel
  /// engine. Fixed default of 8 so digests are comparable across thread
  /// counts out of the box. Ignored when threads() is 0.
  ScenarioBuilder& shards(std::size_t s) { shards_ = s; return *this; }
  /// Conservative window length for cross-shard commit (see
  /// sim/parallel.hpp for what this trades away). Ignored when serial.
  ScenarioBuilder& window(Duration w) { window_ = w; return *this; }

  /// Stagger duty-cycle starts uniformly across one period (default on —
  /// avoids the t=0 thundering herd). Off = all devices start at t=0.
  ScenarioBuilder& stagger_starts(bool on) { stagger_ = on; return *this; }
  /// Power-timeline retention per device (see PowerTimeline).
  ScenarioBuilder& timeline_max_segments(std::size_t n) {
    timeline_max_segments_ = n;
    return *this;
  }
  /// Schedule every device's duty cycle at build time (default). Off =
  /// the caller starts devices manually.
  ScenarioBuilder& auto_start(bool on) { auto_start_ = on; return *this; }
  /// Callback for every message any gateway delivers (the scenario's
  /// aggregate messages() counter is maintained regardless).
  ScenarioBuilder& on_message(core::Receiver::MessageCallback cb) {
    on_message_ = std::move(cb);
    return *this;
  }
  /// Per-cycle send report callback (device index, report).
  ScenarioBuilder& on_send_report(
      std::function<void(int, const core::SendReport&)> fn) {
    on_send_report_ = std::move(fn);
    return *this;
  }

  // --- rules engine ----------------------------------------------------------
  /// Declarative fleet rules, evaluated over every message any gateway
  /// delivers (see wile/rules/engine.hpp). Serial engine only. Telemetry
  /// lands under "rules.*" (rules.fired, per-rule/node counters).
  ScenarioBuilder& rules(std::vector<rules::RuleSpec> specs) {
    rules_ = std::move(specs);
    return *this;
  }
  /// Period of the staleness sweep (Engine::poll). Without this,
  /// stale_after rules never fire.
  ScenarioBuilder& rules_poll_every(Duration period) {
    rules_poll_period_ = period;
    return *this;
  }
  /// Named payload decoder for the rules engine, resolved through
  /// ExtractorRegistry::global() at build time (see
  /// wile/rules/extractors.hpp). Default: the registry's "u16le".
  ScenarioBuilder& rules_extractor(std::string name) {
    rules_extractor_ = std::move(name);
    return *this;
  }

  // --- telemetry knobs -------------------------------------------------------
  /// Master switch. Disabled = no metrics are registered at all: zero
  /// registry entries, zero snapshots, zero sampler events — the
  /// simulation is byte-identical to a pre-telemetry build.
  ScenarioBuilder& telemetry(bool on) { telemetry_ = on; return *this; }
  /// Register per-node metrics (node.<id>.sender.* / .receiver.*) in
  /// addition to aggregates. Default on; fleet-scale benches turn it
  /// off above ~10k nodes to keep registry RSS out of the measurement.
  ScenarioBuilder& per_node_metrics(bool on) { per_node_ = on; return *this; }
  /// Enable protocol-phase tracing with the given event-buffer bound.
  ScenarioBuilder& trace(bool on,
                         std::size_t max_events = telemetry::Tracer::kDefaultMaxEvents) {
    trace_ = on;
    trace_max_events_ = max_events;
    return *this;
  }
  /// Periodically snapshot aggregate metrics on a scheduler timer.
  ScenarioBuilder& sample_every(Duration period) {
    sample_period_ = period;
    return *this;
  }

  [[nodiscard]] std::unique_ptr<Scenario> build() const;

 private:
  friend class Scenario;

  int n_devices_ = 0;
  TxMode mode_ = TxMode::WiLeBeacon;
  WurFleetOptions wur_opts_{};
  BleFleetOptions ble_opts_{};
  std::function<void(int, const ble::AdvertisingPdu&, double)> on_adv_;
  double spacing_m_ = 5.0;
  int gateway_every_ = 2500;
  std::optional<int> n_gateways_;
  Duration period_ = seconds(60);
  Duration wake_jitter_ = msec(500);
  std::uint64_t master_seed_ = 0xF1EE7C0DE;
  std::uint64_t medium_seed_ = 0xF1EE7;
  phy::ChannelConfig channel_{};
  std::optional<double> loss_floor_;
  std::function<core::Sender::PayloadProvider(int)> make_provider_;
  std::function<void(core::SenderConfig&, int)> configure_sender_;
  std::optional<core::HarvestingConfig> harvesting_;
  std::function<void(FaultInjector&)> configure_faults_;
  std::function<void(core::ReceiverConfig&, int)> configure_gateway_;
  std::function<Position(int)> place_device_;
  std::function<Position(int)> place_gateway_;
  std::function<Rng(int)> device_rng_;
  unsigned threads_ = 0;
  std::size_t shards_ = 8;
  Duration window_ = msec(10);
  bool stagger_ = true;
  std::size_t timeline_max_segments_ = 64;
  bool auto_start_ = true;
  core::Receiver::MessageCallback on_message_;
  std::function<void(int, const core::SendReport&)> on_send_report_;
  std::vector<rules::RuleSpec> rules_;
  std::optional<Duration> rules_poll_period_;
  std::optional<std::string> rules_extractor_;
  bool telemetry_ = true;
  bool per_node_ = true;
  bool trace_ = false;
  std::size_t trace_max_events_ = telemetry::Tracer::kDefaultMaxEvents;
  std::optional<Duration> sample_period_;
};

}  // namespace wile::sim
