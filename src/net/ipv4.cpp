#include "net/ipv4.hpp"

#include <cstdio>

namespace wile::net {

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view dotted) {
  std::array<std::uint32_t, 4> parts{};
  std::size_t part = 0;
  std::uint32_t cur = 0;
  bool have_digit = false;
  for (char c : dotted) {
    if (c >= '0' && c <= '9') {
      cur = cur * 10 + static_cast<std::uint32_t>(c - '0');
      if (cur > 255) return std::nullopt;
      have_digit = true;
    } else if (c == '.') {
      if (!have_digit || part >= 3) return std::nullopt;
      parts[part++] = cur;
      cur = 0;
      have_digit = false;
    } else {
      return std::nullopt;
    }
  }
  if (!have_digit || part != 3) return std::nullopt;
  parts[3] = cur;
  return Ipv4Address{static_cast<std::uint8_t>(parts[0]), static_cast<std::uint8_t>(parts[1]),
                     static_cast<std::uint8_t>(parts[2]), static_cast<std::uint8_t>(parts[3])};
}

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (addr_ >> 24) & 0xff, (addr_ >> 16) & 0xff,
                (addr_ >> 8) & 0xff, addr_ & 0xff);
  return buf;
}

std::uint16_t inet_checksum(BytesView data) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<std::uint32_t>((data[i] << 8) | data[i + 1]);
  }
  if (i < data.size()) sum += static_cast<std::uint32_t>(data[i] << 8);
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

Bytes Ipv4Header::encode(BytesView payload) const {
  ByteWriter w(kSize + payload.size());
  w.u8(0x45);  // version 4, IHL 5
  w.u8(dscp);
  w.u16be(static_cast<std::uint16_t>(kSize + payload.size()));
  w.u16be(identification);
  w.u16be(0);  // flags/fragment offset
  w.u8(ttl);
  w.u8(static_cast<std::uint8_t>(protocol));
  w.u16be(0);  // checksum placeholder
  source.write_to(w);
  destination.write_to(w);
  const std::uint16_t csum = inet_checksum(w.view().subspan(0, kSize));
  w.patch_u16be(10, csum);
  w.bytes(payload);
  return w.take();
}

std::optional<Ipv4Header::Parsed> Ipv4Header::decode(BytesView packet) {
  if (packet.size() < kSize) return std::nullopt;
  try {
    ByteReader r{packet};
    const std::uint8_t ver_ihl = r.u8();
    if ((ver_ihl >> 4) != 4) return std::nullopt;
    const std::size_t ihl_bytes = static_cast<std::size_t>(ver_ihl & 0xf) * 4;
    if (ihl_bytes < kSize || packet.size() < ihl_bytes) return std::nullopt;
    Parsed out;
    out.header.dscp = r.u8();
    const std::uint16_t total_len = r.u16be();
    if (total_len < ihl_bytes || total_len > packet.size()) return std::nullopt;
    out.header.identification = r.u16be();
    r.u16be();  // flags/frag
    out.header.ttl = r.u8();
    out.header.protocol = static_cast<IpProto>(r.u8());
    r.u16be();  // checksum (validated over the whole header below)
    out.header.source = Ipv4Address::read_from(r);
    out.header.destination = Ipv4Address::read_from(r);
    r.skip(ihl_bytes - kSize);  // options
    out.checksum_ok = inet_checksum(packet.subspan(0, ihl_bytes)) == 0;
    const BytesView payload = packet.subspan(ihl_bytes, total_len - ihl_bytes);
    out.payload.assign(payload.begin(), payload.end());
    return out;
  } catch (const BufferUnderflow&) {
    return std::nullopt;
  }
}

}  // namespace wile::net
