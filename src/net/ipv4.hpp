// IPv4 address type and header codec (RFC 791).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/byte_buffer.hpp"

namespace wile::net {

class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t host_order) : addr_(host_order) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : addr_((static_cast<std::uint32_t>(a) << 24) | (static_cast<std::uint32_t>(b) << 16) |
              (static_cast<std::uint32_t>(c) << 8) | d) {}

  static constexpr Ipv4Address any() { return Ipv4Address{0u}; }
  static constexpr Ipv4Address broadcast() { return Ipv4Address{0xffffffffu}; }
  static std::optional<Ipv4Address> parse(std::string_view dotted);

  [[nodiscard]] constexpr std::uint32_t value() const { return addr_; }
  [[nodiscard]] constexpr bool is_any() const { return addr_ == 0; }
  [[nodiscard]] std::string to_string() const;

  void write_to(ByteWriter& w) const { w.u32be(addr_); }
  static Ipv4Address read_from(ByteReader& r) { return Ipv4Address{r.u32be()}; }

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) = default;

 private:
  std::uint32_t addr_ = 0;
};

enum class IpProto : std::uint8_t {
  Icmp = 1,
  Tcp = 6,
  Udp = 17,
};

struct Ipv4Header {
  static constexpr std::size_t kSize = 20;  // no options

  std::uint8_t dscp = 0;
  std::uint16_t identification = 0;
  std::uint8_t ttl = 64;
  IpProto protocol = IpProto::Udp;
  Ipv4Address source;
  Ipv4Address destination;

  /// Serialise header + payload; total length and checksum are computed.
  [[nodiscard]] Bytes encode(BytesView payload) const;

  struct Parsed;
  static std::optional<Parsed> decode(BytesView packet);
};

struct Ipv4Header::Parsed {
  Ipv4Header header;
  Bytes payload;
  bool checksum_ok = false;
};

/// RFC 1071 ones-complement checksum over `data` (used by IPv4 and UDP).
std::uint16_t inet_checksum(BytesView data);

}  // namespace wile::net
