#include "net/llc.hpp"

namespace wile::net {

Bytes LlcSnap::encode() const { return llc_wrap(ethertype, payload); }

std::optional<LlcSnap> LlcSnap::decode(BytesView body) {
  if (body.size() < kHeaderSize) return std::nullopt;
  if (body[0] != 0xaa || body[1] != 0xaa || body[2] != 0x03) return std::nullopt;
  if (body[3] != 0x00 || body[4] != 0x00 || body[5] != 0x00) return std::nullopt;
  LlcSnap out;
  out.ethertype = static_cast<EtherType>((body[6] << 8) | body[7]);
  out.payload.assign(body.begin() + kHeaderSize, body.end());
  return out;
}

Bytes llc_wrap(EtherType ethertype, BytesView payload) {
  ByteWriter w(LlcSnap::kHeaderSize + payload.size());
  w.u8(0xaa);
  w.u8(0xaa);
  w.u8(0x03);
  w.u8(0x00);
  w.u8(0x00);
  w.u8(0x00);
  w.u16be(static_cast<std::uint16_t>(ethertype));
  w.bytes(payload);
  return w.take();
}

}  // namespace wile::net
