#include "net/udp.hpp"

namespace wile::net {

namespace {
std::uint16_t udp_checksum(BytesView udp_segment, Ipv4Address src_ip, Ipv4Address dst_ip) {
  ByteWriter pseudo(12 + udp_segment.size());
  src_ip.write_to(pseudo);
  dst_ip.write_to(pseudo);
  pseudo.u8(0);
  pseudo.u8(static_cast<std::uint8_t>(IpProto::Udp));
  pseudo.u16be(static_cast<std::uint16_t>(udp_segment.size()));
  pseudo.bytes(udp_segment);
  std::uint16_t csum = inet_checksum(pseudo.view());
  // RFC 768: a computed zero is transmitted as all-ones.
  if (csum == 0) csum = 0xffff;
  return csum;
}
}  // namespace

Bytes UdpDatagram::encode(Ipv4Address src_ip, Ipv4Address dst_ip) const {
  ByteWriter w(kHeaderSize + payload.size());
  w.u16be(source_port);
  w.u16be(dest_port);
  w.u16be(static_cast<std::uint16_t>(kHeaderSize + payload.size()));
  w.u16be(0);  // checksum placeholder
  w.bytes(payload);
  Bytes out = w.take();
  const std::uint16_t csum = udp_checksum(out, src_ip, dst_ip);
  out[6] = static_cast<std::uint8_t>(csum >> 8);
  out[7] = static_cast<std::uint8_t>(csum & 0xff);
  return out;
}

std::optional<UdpDatagram::Parsed> UdpDatagram::decode(BytesView segment, Ipv4Address src_ip,
                                                       Ipv4Address dst_ip) {
  if (segment.size() < kHeaderSize) return std::nullopt;
  try {
    ByteReader r{segment};
    Parsed out;
    out.datagram.source_port = r.u16be();
    out.datagram.dest_port = r.u16be();
    const std::uint16_t len = r.u16be();
    if (len < kHeaderSize || len > segment.size()) return std::nullopt;
    const std::uint16_t wire_csum = r.u16be();
    const BytesView payload = segment.subspan(kHeaderSize, len - kHeaderSize);
    out.datagram.payload.assign(payload.begin(), payload.end());
    if (wire_csum == 0) {
      out.checksum_ok = true;  // checksum not used by sender
    } else {
      // Re-checksum with the checksum field zeroed.
      Bytes copy(segment.begin(), segment.begin() + len);
      copy[6] = copy[7] = 0;
      out.checksum_ok = udp_checksum(copy, src_ip, dst_ip) == wire_csum;
    }
    return out;
  } catch (const BufferUnderflow&) {
    return std::nullopt;
  }
}

Bytes udp_packet(Ipv4Address src_ip, std::uint16_t src_port, Ipv4Address dst_ip,
                 std::uint16_t dst_port, BytesView payload) {
  UdpDatagram d;
  d.source_port = src_port;
  d.dest_port = dst_port;
  d.payload.assign(payload.begin(), payload.end());
  Ipv4Header ip;
  ip.source = src_ip;
  ip.destination = dst_ip;
  ip.protocol = IpProto::Udp;
  return ip.encode(d.encode(src_ip, dst_ip));
}

}  // namespace wile::net
