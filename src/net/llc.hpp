// LLC/SNAP encapsulation (IEEE 802.2).
//
// 802.11 data frame bodies carry LLC/SNAP-wrapped network packets:
//   AA AA 03 | 00 00 00 | ethertype(2, BE) | payload
// The paper's connection-establishment accounting includes "7 higher-
// layer frames including DHCP and ARP" — each of those rides inside one
// of these.
#pragma once

#include <cstdint>
#include <optional>

#include "util/byte_buffer.hpp"

namespace wile::net {

enum class EtherType : std::uint16_t {
  Ipv4 = 0x0800,
  Arp = 0x0806,
  Eapol = 0x888e,
};

struct LlcSnap {
  static constexpr std::size_t kHeaderSize = 8;

  EtherType ethertype = EtherType::Ipv4;
  Bytes payload;

  [[nodiscard]] Bytes encode() const;
  static std::optional<LlcSnap> decode(BytesView body);
};

/// Convenience: wrap `payload` in LLC/SNAP with the given ethertype.
Bytes llc_wrap(EtherType ethertype, BytesView payload);

}  // namespace wile::net
