// ARP for IPv4 over Ethernet-style hardware addresses (RFC 826).
//
// Before the paper's WiFi client can unicast its sensor reading it must
// resolve the gateway's MAC: one ARP request + one ARP reply — two of the
// "7 higher-layer frames" the paper counts in §3.1.
#pragma once

#include <cstdint>
#include <optional>

#include "net/ipv4.hpp"
#include "util/byte_buffer.hpp"
#include "util/mac_address.hpp"

namespace wile::net {

struct ArpPacket {
  enum class Op : std::uint16_t { Request = 1, Reply = 2 };
  static constexpr std::size_t kSize = 28;

  Op op = Op::Request;
  MacAddress sender_mac;
  Ipv4Address sender_ip;
  MacAddress target_mac;  // zero in requests
  Ipv4Address target_ip;

  [[nodiscard]] Bytes encode() const;
  static std::optional<ArpPacket> decode(BytesView packet);

  static ArpPacket request(const MacAddress& sender_mac, Ipv4Address sender_ip,
                           Ipv4Address target_ip);
  static ArpPacket reply(const MacAddress& sender_mac, Ipv4Address sender_ip,
                         const MacAddress& target_mac, Ipv4Address target_ip);
};

}  // namespace wile::net
