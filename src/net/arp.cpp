#include "net/arp.hpp"

namespace wile::net {

Bytes ArpPacket::encode() const {
  ByteWriter w(kSize);
  w.u16be(1);       // hardware type: Ethernet
  w.u16be(0x0800);  // protocol type: IPv4
  w.u8(6);          // hardware size
  w.u8(4);          // protocol size
  w.u16be(static_cast<std::uint16_t>(op));
  sender_mac.write_to(w);
  sender_ip.write_to(w);
  target_mac.write_to(w);
  target_ip.write_to(w);
  return w.take();
}

std::optional<ArpPacket> ArpPacket::decode(BytesView packet) {
  if (packet.size() < kSize) return std::nullopt;
  try {
    ByteReader r{packet};
    if (r.u16be() != 1) return std::nullopt;
    if (r.u16be() != 0x0800) return std::nullopt;
    if (r.u8() != 6) return std::nullopt;
    if (r.u8() != 4) return std::nullopt;
    ArpPacket out;
    out.op = static_cast<Op>(r.u16be());
    if (out.op != Op::Request && out.op != Op::Reply) return std::nullopt;
    out.sender_mac = MacAddress::read_from(r);
    out.sender_ip = Ipv4Address::read_from(r);
    out.target_mac = MacAddress::read_from(r);
    out.target_ip = Ipv4Address::read_from(r);
    return out;
  } catch (const BufferUnderflow&) {
    return std::nullopt;
  }
}

ArpPacket ArpPacket::request(const MacAddress& sender_mac, Ipv4Address sender_ip,
                             Ipv4Address target_ip) {
  ArpPacket p;
  p.op = Op::Request;
  p.sender_mac = sender_mac;
  p.sender_ip = sender_ip;
  p.target_ip = target_ip;
  return p;
}

ArpPacket ArpPacket::reply(const MacAddress& sender_mac, Ipv4Address sender_ip,
                           const MacAddress& target_mac, Ipv4Address target_ip) {
  ArpPacket p;
  p.op = Op::Reply;
  p.sender_mac = sender_mac;
  p.sender_ip = sender_ip;
  p.target_mac = target_mac;
  p.target_ip = target_ip;
  return p;
}

}  // namespace wile::net
