// UDP datagram codec with the IPv4 pseudo-header checksum (RFC 768).
#pragma once

#include <cstdint>
#include <optional>

#include "net/ipv4.hpp"
#include "util/byte_buffer.hpp"

namespace wile::net {

struct UdpDatagram {
  static constexpr std::size_t kHeaderSize = 8;

  std::uint16_t source_port = 0;
  std::uint16_t dest_port = 0;
  Bytes payload;

  /// Serialise with checksum over the IPv4 pseudo-header.
  [[nodiscard]] Bytes encode(Ipv4Address src_ip, Ipv4Address dst_ip) const;

  struct Parsed;
  static std::optional<Parsed> decode(BytesView segment, Ipv4Address src_ip,
                                      Ipv4Address dst_ip);
};

struct UdpDatagram::Parsed {
  UdpDatagram datagram;
  bool checksum_ok = false;
};

/// Build a complete IPv4+UDP packet.
Bytes udp_packet(Ipv4Address src_ip, std::uint16_t src_port, Ipv4Address dst_ip,
                 std::uint16_t dst_port, BytesView payload);

}  // namespace wile::net
