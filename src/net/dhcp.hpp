// DHCP (RFC 2131/2132) — the DISCOVER/OFFER/REQUEST/ACK exchange.
//
// Four of the "7 higher-layer frames" the paper counts before a WiFi
// client can transmit (§3.1) are this exchange. We implement the BOOTP
// wire format with the options the exchange needs; the AP module runs a
// single-subnet DHCP server on top.
#pragma once

#include <cstdint>
#include <optional>

#include "net/ipv4.hpp"
#include "util/byte_buffer.hpp"
#include "util/mac_address.hpp"

namespace wile::net {

enum class DhcpMessageType : std::uint8_t {
  Discover = 1,
  Offer = 2,
  Request = 3,
  Decline = 4,
  Ack = 5,
  Nak = 6,
  Release = 7,
};

struct DhcpOption {
  enum : std::uint8_t {
    kSubnetMask = 1,
    kRouter = 3,
    kDnsServer = 6,
    kRequestedIp = 50,
    kLeaseTime = 51,
    kMessageType = 53,
    kServerId = 54,
    kParameterRequestList = 55,
    kEnd = 255,
  };
  std::uint8_t code = 0;
  Bytes data;
};

struct DhcpMessage {
  static constexpr std::uint16_t kServerPort = 67;
  static constexpr std::uint16_t kClientPort = 68;

  DhcpMessageType type = DhcpMessageType::Discover;
  std::uint32_t xid = 0;
  bool broadcast_flag = true;
  Ipv4Address ciaddr;  // client's current address (REQUEST when renewing)
  Ipv4Address yiaddr;  // "your" address (server -> client)
  Ipv4Address siaddr;  // next server
  MacAddress chaddr;   // client hardware address
  std::vector<DhcpOption> options;

  [[nodiscard]] const DhcpOption* find_option(std::uint8_t code) const;
  [[nodiscard]] std::optional<Ipv4Address> ip_option(std::uint8_t code) const;
  void add_ip_option(std::uint8_t code, Ipv4Address ip);
  void add_u32_option(std::uint8_t code, std::uint32_t value);

  /// Serialise to the UDP payload (BOOTP fixed header + magic + options).
  [[nodiscard]] Bytes encode() const;
  static std::optional<DhcpMessage> decode(BytesView payload);

  // -- Exchange constructors -------------------------------------------------
  static DhcpMessage discover(std::uint32_t xid, const MacAddress& client);
  static DhcpMessage offer(const DhcpMessage& discover_msg, Ipv4Address offered,
                           Ipv4Address server_id, std::uint32_t lease_seconds);
  static DhcpMessage request(const DhcpMessage& offer_msg, const MacAddress& client);
  static DhcpMessage ack(const DhcpMessage& request_msg, Ipv4Address assigned,
                         Ipv4Address server_id, std::uint32_t lease_seconds);
};

}  // namespace wile::net
