#include "net/dhcp.hpp"

namespace wile::net {

namespace {
constexpr std::uint32_t kDhcpMagic = 0x63825363;
constexpr std::size_t kBootpFixedSize = 236;
}  // namespace

const DhcpOption* DhcpMessage::find_option(std::uint8_t code) const {
  for (const auto& opt : options) {
    if (opt.code == code) return &opt;
  }
  return nullptr;
}

std::optional<Ipv4Address> DhcpMessage::ip_option(std::uint8_t code) const {
  const DhcpOption* opt = find_option(code);
  if (opt == nullptr || opt->data.size() != 4) return std::nullopt;
  ByteReader r{opt->data};
  return Ipv4Address::read_from(r);
}

void DhcpMessage::add_ip_option(std::uint8_t code, Ipv4Address ip) {
  ByteWriter w(4);
  ip.write_to(w);
  options.push_back(DhcpOption{code, w.take()});
}

void DhcpMessage::add_u32_option(std::uint8_t code, std::uint32_t value) {
  ByteWriter w(4);
  w.u32be(value);
  options.push_back(DhcpOption{code, w.take()});
}

Bytes DhcpMessage::encode() const {
  ByteWriter w(kBootpFixedSize + 16 + options.size() * 8);
  const bool from_server =
      type == DhcpMessageType::Offer || type == DhcpMessageType::Ack ||
      type == DhcpMessageType::Nak;
  w.u8(from_server ? 2 : 1);  // op: BOOTREQUEST / BOOTREPLY
  w.u8(1);                    // htype: Ethernet
  w.u8(6);                    // hlen
  w.u8(0);                    // hops
  w.u32be(xid);
  w.u16be(0);                               // secs
  w.u16be(broadcast_flag ? 0x8000 : 0x0000);  // flags
  ciaddr.write_to(w);
  yiaddr.write_to(w);
  siaddr.write_to(w);
  Ipv4Address{}.write_to(w);  // giaddr
  chaddr.write_to(w);
  w.zeros(10);   // chaddr padding
  w.zeros(64);   // sname
  w.zeros(128);  // file
  w.u32be(kDhcpMagic);
  w.u8(DhcpOption::kMessageType);
  w.u8(1);
  w.u8(static_cast<std::uint8_t>(type));
  for (const auto& opt : options) {
    w.u8(opt.code);
    w.u8(static_cast<std::uint8_t>(opt.data.size()));
    w.bytes(opt.data);
  }
  w.u8(DhcpOption::kEnd);
  return w.take();
}

std::optional<DhcpMessage> DhcpMessage::decode(BytesView payload) {
  if (payload.size() < kBootpFixedSize + 4) return std::nullopt;
  try {
    ByteReader r{payload};
    DhcpMessage out;
    r.u8();  // op (implied by message type option)
    if (r.u8() != 1) return std::nullopt;
    if (r.u8() != 6) return std::nullopt;
    r.u8();  // hops
    out.xid = r.u32be();
    r.u16be();  // secs
    out.broadcast_flag = (r.u16be() & 0x8000) != 0;
    out.ciaddr = Ipv4Address::read_from(r);
    out.yiaddr = Ipv4Address::read_from(r);
    out.siaddr = Ipv4Address::read_from(r);
    Ipv4Address::read_from(r);  // giaddr
    out.chaddr = MacAddress::read_from(r);
    r.skip(10 + 64 + 128);
    if (r.u32be() != kDhcpMagic) return std::nullopt;

    bool have_type = false;
    while (!r.empty()) {
      const std::uint8_t code = r.u8();
      if (code == DhcpOption::kEnd) break;
      if (code == 0) continue;  // pad
      const std::uint8_t len = r.u8();
      Bytes data = r.bytes_copy(len);
      if (code == DhcpOption::kMessageType) {
        if (data.size() != 1) return std::nullopt;
        out.type = static_cast<DhcpMessageType>(data[0]);
        have_type = true;
      } else {
        out.options.push_back(DhcpOption{code, std::move(data)});
      }
    }
    if (!have_type) return std::nullopt;
    return out;
  } catch (const BufferUnderflow&) {
    return std::nullopt;
  }
}

DhcpMessage DhcpMessage::discover(std::uint32_t xid, const MacAddress& client) {
  DhcpMessage m;
  m.type = DhcpMessageType::Discover;
  m.xid = xid;
  m.chaddr = client;
  DhcpOption prl{DhcpOption::kParameterRequestList,
                 {DhcpOption::kSubnetMask, DhcpOption::kRouter, DhcpOption::kDnsServer}};
  m.options.push_back(std::move(prl));
  return m;
}

DhcpMessage DhcpMessage::offer(const DhcpMessage& discover_msg, Ipv4Address offered,
                               Ipv4Address server_id, std::uint32_t lease_seconds) {
  DhcpMessage m;
  m.type = DhcpMessageType::Offer;
  m.xid = discover_msg.xid;
  m.chaddr = discover_msg.chaddr;
  m.yiaddr = offered;
  m.siaddr = server_id;
  m.add_ip_option(DhcpOption::kServerId, server_id);
  m.add_u32_option(DhcpOption::kLeaseTime, lease_seconds);
  m.add_ip_option(DhcpOption::kSubnetMask, Ipv4Address{255, 255, 255, 0});
  m.add_ip_option(DhcpOption::kRouter, server_id);
  return m;
}

DhcpMessage DhcpMessage::request(const DhcpMessage& offer_msg, const MacAddress& client) {
  DhcpMessage m;
  m.type = DhcpMessageType::Request;
  m.xid = offer_msg.xid;
  m.chaddr = client;
  m.add_ip_option(DhcpOption::kRequestedIp, offer_msg.yiaddr);
  if (auto sid = offer_msg.ip_option(DhcpOption::kServerId)) {
    m.add_ip_option(DhcpOption::kServerId, *sid);
  }
  return m;
}

DhcpMessage DhcpMessage::ack(const DhcpMessage& request_msg, Ipv4Address assigned,
                             Ipv4Address server_id, std::uint32_t lease_seconds) {
  DhcpMessage m;
  m.type = DhcpMessageType::Ack;
  m.xid = request_msg.xid;
  m.chaddr = request_msg.chaddr;
  m.yiaddr = assigned;
  m.siaddr = server_id;
  m.add_ip_option(DhcpOption::kServerId, server_id);
  m.add_u32_option(DhcpOption::kLeaseTime, lease_seconds);
  m.add_ip_option(DhcpOption::kSubnetMask, Ipv4Address{255, 255, 255, 0});
  m.add_ip_option(DhcpOption::kRouter, server_id);
  return m;
}

}  // namespace wile::net
