#include "crypto/hmac_sha1.hpp"

#include <cstring>

namespace wile::crypto {

HmacSha1::HmacSha1(BytesView key) {
  std::array<std::uint8_t, Sha1::kBlockSize> k{};
  if (key.size() > Sha1::kBlockSize) {
    const auto digest = Sha1::hash(key);
    std::memcpy(k.data(), digest.data(), digest.size());
  } else {
    std::memcpy(k.data(), key.data(), key.size());
  }
  std::array<std::uint8_t, Sha1::kBlockSize> ipad_key{};
  for (std::size_t i = 0; i < Sha1::kBlockSize; ++i) {
    ipad_key[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad_key_[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }
  inner_.update(ipad_key);
}

void HmacSha1::update(BytesView data) { inner_.update(data); }

HmacSha1Digest HmacSha1::finish() {
  const auto inner_digest = inner_.finish();
  Sha1 outer;
  outer.update(opad_key_);
  outer.update(inner_digest);
  return outer.finish();
}

HmacSha1Digest hmac_sha1(BytesView key, BytesView data) {
  HmacSha1 mac(key);
  mac.update(data);
  return mac.finish();
}

}  // namespace wile::crypto
