#include "crypto/crc.hpp"

#include <array>
#include <bit>
#include <cstring>

namespace wile::crypto {

namespace {

// Slice-by-8 tables for the reflected IEEE 802.3 polynomial 0xEDB88320,
// generated at static-init time. table[0] is the classic bytewise table;
// table[k][b] is the CRC of byte b followed by k zero bytes, letting the
// hot loop fold 8 input bytes per iteration (the FCS of every simulated
// beacon goes through here — see bench/micro_perf BM_BeaconAssembleParse).
using Crc32Tables = std::array<std::array<std::uint32_t, 256>, 8>;

Crc32Tables make_crc32_tables() {
  Crc32Tables t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    t[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = t[0][i];
    for (std::size_t k = 1; k < 8; ++k) {
      c = t[0][c & 0xff] ^ (c >> 8);
      t[k][i] = c;
    }
  }
  return t;
}

const Crc32Tables& crc32_tables() {
  static const auto tables = make_crc32_tables();
  return tables;
}

}  // namespace

void Crc32::update(BytesView data) {
  const auto& t = crc32_tables();
  std::uint32_t c = state_;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  // The word-at-a-time fold below is little-endian; the bytewise tail
  // loop handles everything on big-endian hosts.
  while (std::endian::native == std::endian::little && n >= 8) {
    // Little-endian fold of the CRC into the first 4 bytes; memcpy keeps
    // it alignment-safe and compiles to two loads.
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= c;
    c = t[7][lo & 0xff] ^ t[6][(lo >> 8) & 0xff] ^ t[5][(lo >> 16) & 0xff] ^
        t[4][lo >> 24] ^ t[3][hi & 0xff] ^ t[2][(hi >> 8) & 0xff] ^
        t[1][(hi >> 16) & 0xff] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  for (; n > 0; ++p, --n) {
    c = t[0][(c ^ *p) & 0xff] ^ (c >> 8);
  }
  state_ = c;
}

std::uint32_t crc32(BytesView data) {
  Crc32 c;
  c.update(data);
  return c.value();
}

std::uint32_t crc24_ble(BytesView data, std::uint32_t init) {
  // Bit-serial LFSR per Bluetooth Core v4.x Vol 6 Part B §3.1.1:
  // polynomial x^24 + x^10 + x^9 + x^6 + x^4 + x^3 + x + 1, data bits
  // clocked in LSB-first.
  std::uint32_t crc = init & 0xffffff;
  for (std::uint8_t byte : data) {
    for (int i = 0; i < 8; ++i) {
      const std::uint32_t in_bit = (byte >> i) & 1;
      const std::uint32_t msb = (crc >> 23) & 1;
      crc = (crc << 1) & 0xffffff;
      if (in_bit ^ msb) crc ^= 0x00065B;
    }
  }
  return crc;
}

}  // namespace wile::crypto
