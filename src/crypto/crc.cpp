#include "crypto/crc.hpp"

#include <array>

namespace wile::crypto {

namespace {

// Table for the reflected IEEE 802.3 polynomial 0xEDB88320, generated at
// static-init time (cheap, 256 iterations of 8 steps).
std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& crc32_table() {
  static const auto table = make_crc32_table();
  return table;
}

}  // namespace

void Crc32::update(BytesView data) {
  const auto& table = crc32_table();
  std::uint32_t c = state_;
  for (std::uint8_t b : data) {
    c = table[(c ^ b) & 0xff] ^ (c >> 8);
  }
  state_ = c;
}

std::uint32_t crc32(BytesView data) {
  Crc32 c;
  c.update(data);
  return c.value();
}

std::uint32_t crc24_ble(BytesView data, std::uint32_t init) {
  // Bit-serial LFSR per Bluetooth Core v4.x Vol 6 Part B §3.1.1:
  // polynomial x^24 + x^10 + x^9 + x^6 + x^4 + x^3 + x + 1, data bits
  // clocked in LSB-first.
  std::uint32_t crc = init & 0xffffff;
  for (std::uint8_t byte : data) {
    for (int i = 0; i < 8; ++i) {
      const std::uint32_t in_bit = (byte >> i) & 1;
      const std::uint32_t msb = (crc >> 23) & 1;
      crc = (crc << 1) & 0xffffff;
      if (in_bit ^ msb) crc ^= 0x00065B;
    }
  }
  return crc;
}

}  // namespace wile::crypto
