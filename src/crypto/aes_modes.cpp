#include "crypto/aes_modes.hpp"

#include <cstring>
#include <stdexcept>

namespace wile::crypto {

Bytes aes_ctr(const Aes128& cipher, const std::array<std::uint8_t, 12>& nonce,
              BytesView data, std::uint32_t initial_counter) {
  Bytes out(data.begin(), data.end());
  std::uint32_t counter = initial_counter;
  for (std::size_t off = 0; off < out.size(); off += Aes128::kBlockSize, ++counter) {
    Aes128::Block ctr_block{};
    std::memcpy(ctr_block.data(), nonce.data(), nonce.size());
    ctr_block[12] = static_cast<std::uint8_t>(counter >> 24);
    ctr_block[13] = static_cast<std::uint8_t>(counter >> 16);
    ctr_block[14] = static_cast<std::uint8_t>(counter >> 8);
    ctr_block[15] = static_cast<std::uint8_t>(counter);
    const Aes128::Block keystream = cipher.encrypt_block(ctr_block);
    const std::size_t n = std::min(Aes128::kBlockSize, out.size() - off);
    for (std::size_t i = 0; i < n; ++i) out[off + i] ^= keystream[i];
  }
  return out;
}

namespace {
// Double a 128-bit value in GF(2^128) per SP 800-38B subkey generation.
Aes128::Block gf_double(const Aes128::Block& in) {
  Aes128::Block out{};
  std::uint8_t carry = 0;
  for (int i = 15; i >= 0; --i) {
    out[i] = static_cast<std::uint8_t>((in[i] << 1) | carry);
    carry = (in[i] & 0x80) ? 1 : 0;
  }
  if (carry) out[15] ^= 0x87;
  return out;
}
}  // namespace

std::array<std::uint8_t, 16> aes_cmac(const Aes128& cipher, BytesView data) {
  // Subkeys K1 (full final block) and K2 (padded final block).
  const Aes128::Block zero{};
  const Aes128::Block l = cipher.encrypt_block(zero);
  const Aes128::Block k1 = gf_double(l);
  const Aes128::Block k2 = gf_double(k1);

  const std::size_t n_blocks =
      data.empty() ? 1 : (data.size() + Aes128::kBlockSize - 1) / Aes128::kBlockSize;
  const bool last_complete = !data.empty() && data.size() % Aes128::kBlockSize == 0;

  Aes128::Block x{};
  for (std::size_t b = 0; b + 1 < n_blocks; ++b) {
    for (std::size_t i = 0; i < Aes128::kBlockSize; ++i) {
      x[i] ^= data[b * Aes128::kBlockSize + i];
    }
    x = cipher.encrypt_block(x);
  }

  // Final block, masked with K1 or padded + masked with K2.
  Aes128::Block last{};
  const std::size_t last_off = (n_blocks - 1) * Aes128::kBlockSize;
  const std::size_t last_len = data.size() - last_off;
  if (last_complete) {
    for (std::size_t i = 0; i < Aes128::kBlockSize; ++i) {
      last[i] = static_cast<std::uint8_t>(data[last_off + i] ^ k1[i]);
    }
  } else {
    for (std::size_t i = 0; i < last_len; ++i) last[i] = data[last_off + i];
    last[last_len] = 0x80;
    for (std::size_t i = 0; i < Aes128::kBlockSize; ++i) {
      last[i] = static_cast<std::uint8_t>(last[i] ^ k2[i]);
    }
  }
  for (std::size_t i = 0; i < Aes128::kBlockSize; ++i) x[i] ^= last[i];
  return cipher.encrypt_block(x);
}

namespace {
// 64-bit halves for the key-wrap register, big-endian on the wire.
Aes128::Block concat64(const std::uint8_t* a, const std::uint8_t* b) {
  Aes128::Block out{};
  std::memcpy(out.data(), a, 8);
  std::memcpy(out.data() + 8, b, 8);
  return out;
}
}  // namespace

Bytes aes_key_wrap(const Aes128& kek, BytesView plaintext) {
  if (plaintext.size() < 16 || plaintext.size() % 8 != 0) {
    throw std::invalid_argument("aes_key_wrap: plaintext must be 8k bytes, k >= 2");
  }
  const std::size_t n = plaintext.size() / 8;
  std::uint8_t a[8];
  std::memset(a, 0xa6, sizeof(a));  // RFC 3394 default IV
  Bytes r(plaintext.begin(), plaintext.end());

  for (std::size_t j = 0; j < 6; ++j) {
    for (std::size_t i = 1; i <= n; ++i) {
      Aes128::Block b = kek.encrypt_block(concat64(a, &r[(i - 1) * 8]));
      const std::uint64_t t = static_cast<std::uint64_t>(n) * j + i;
      std::memcpy(a, b.data(), 8);
      for (int k = 0; k < 8; ++k) {
        a[7 - k] ^= static_cast<std::uint8_t>((t >> (8 * k)) & 0xff);
      }
      std::memcpy(&r[(i - 1) * 8], b.data() + 8, 8);
    }
  }
  Bytes out;
  out.reserve(8 + r.size());
  out.insert(out.end(), a, a + 8);
  out.insert(out.end(), r.begin(), r.end());
  return out;
}

std::optional<Bytes> aes_key_unwrap(const Aes128& kek, BytesView wrapped) {
  if (wrapped.size() < 24 || wrapped.size() % 8 != 0) return std::nullopt;
  const std::size_t n = wrapped.size() / 8 - 1;
  std::uint8_t a[8];
  std::memcpy(a, wrapped.data(), 8);
  Bytes r(wrapped.begin() + 8, wrapped.end());

  for (int j = 5; j >= 0; --j) {
    for (std::size_t i = n; i >= 1; --i) {
      const std::uint64_t t = static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(j) + i;
      std::uint8_t a_x[8];
      std::memcpy(a_x, a, 8);
      for (int k = 0; k < 8; ++k) {
        a_x[7 - k] ^= static_cast<std::uint8_t>((t >> (8 * k)) & 0xff);
      }
      const Aes128::Block b = kek.decrypt_block(concat64(a_x, &r[(i - 1) * 8]));
      std::memcpy(a, b.data(), 8);
      std::memcpy(&r[(i - 1) * 8], b.data() + 8, 8);
    }
  }
  for (std::size_t k = 0; k < 8; ++k) {
    if (a[k] != 0xa6) return std::nullopt;
  }
  return r;
}

}  // namespace wile::crypto
