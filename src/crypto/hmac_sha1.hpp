// HMAC-SHA1 (RFC 2104), the MAC primitive under all WPA2-PSK key
// derivation and the EAPOL-Key MIC (key descriptor version 2).
#pragma once

#include <array>
#include <cstdint>

#include "crypto/sha1.hpp"
#include "util/byte_buffer.hpp"

namespace wile::crypto {

using HmacSha1Digest = std::array<std::uint8_t, Sha1::kDigestSize>;

/// One-shot HMAC-SHA1 of `data` under `key` (any key length; keys longer
/// than the block size are hashed first, per RFC 2104).
HmacSha1Digest hmac_sha1(BytesView key, BytesView data);

/// Streaming variant for multi-part messages (the 802.11i PRF feeds
/// label || 0x00 || data || counter without concatenating buffers).
class HmacSha1 {
 public:
  explicit HmacSha1(BytesView key);
  void update(BytesView data);
  HmacSha1Digest finish();

 private:
  std::array<std::uint8_t, Sha1::kBlockSize> opad_key_{};
  Sha1 inner_;
};

}  // namespace wile::crypto
