// PBKDF2-HMAC-SHA1 (RFC 2898 §5.2).
//
// WPA2-PSK derives the 256-bit pairwise master key from the passphrase as
//   PMK = PBKDF2(passphrase, ssid, 4096 iterations, 32 bytes)
// (IEEE 802.11i Annex H.4). Our AP and STA both run this for real during
// the simulated 4-way handshake.
#pragma once

#include <cstdint>
#include <string_view>

#include "util/byte_buffer.hpp"

namespace wile::crypto {

Bytes pbkdf2_hmac_sha1(BytesView password, BytesView salt, std::uint32_t iterations,
                       std::size_t output_len);

/// WPA2 passphrase-to-PMK convenience (4096 iterations, 32 bytes).
Bytes wpa2_psk(std::string_view passphrase, std::string_view ssid);

}  // namespace wile::crypto
