// Cyclic redundancy checks used by the two radio standards we model.
//
//  * CRC-32 (IEEE 802.3 polynomial, reflected) — the 802.11 FCS appended
//    to every frame on the air, and also used by the Wi-LE payload
//    container as an application-layer integrity check.
//  * CRC-24 (polynomial 0x00065B, as specified by Bluetooth Core v4.x
//    Vol 6 Part B §3.1.1) — the BLE link-layer CRC.
#pragma once

#include <cstdint>

#include "util/byte_buffer.hpp"

namespace wile::crypto {

/// One-shot CRC-32 over a buffer (init 0xffffffff, final xor 0xffffffff).
std::uint32_t crc32(BytesView data);

/// Incremental CRC-32 for streaming use; Crc32 c; c.update(a); c.update(b);
/// c.value() == crc32(a||b).
class Crc32 {
 public:
  void update(BytesView data);
  [[nodiscard]] std::uint32_t value() const { return state_ ^ 0xffffffffu; }

 private:
  std::uint32_t state_ = 0xffffffffu;
};

/// BLE CRC-24. `init` is the CRC initialisation value carried in the
/// CONNECT_IND for data channel PDUs; advertising channel PDUs use the
/// fixed 0x555555 (the default).
std::uint32_t crc24_ble(BytesView data, std::uint32_t init = 0x555555);

}  // namespace wile::crypto
