#include "crypto/pbkdf2.hpp"

#include "crypto/hmac_sha1.hpp"

namespace wile::crypto {

Bytes pbkdf2_hmac_sha1(BytesView password, BytesView salt, std::uint32_t iterations,
                       std::size_t output_len) {
  Bytes out;
  out.reserve(output_len);
  std::uint32_t block_index = 1;
  while (out.size() < output_len) {
    // U1 = HMAC(password, salt || INT_BE(block_index))
    HmacSha1 mac(password);
    mac.update(salt);
    const std::uint8_t idx[4] = {
        static_cast<std::uint8_t>(block_index >> 24),
        static_cast<std::uint8_t>(block_index >> 16),
        static_cast<std::uint8_t>(block_index >> 8),
        static_cast<std::uint8_t>(block_index),
    };
    mac.update(BytesView{idx, 4});
    auto u = mac.finish();
    auto t = u;
    for (std::uint32_t i = 1; i < iterations; ++i) {
      u = hmac_sha1(password, u);
      for (std::size_t k = 0; k < t.size(); ++k) t[k] ^= u[k];
    }
    const std::size_t take = std::min(t.size(), output_len - out.size());
    out.insert(out.end(), t.begin(), t.begin() + take);
    ++block_index;
  }
  return out;
}

Bytes wpa2_psk(std::string_view passphrase, std::string_view ssid) {
  const BytesView pw{reinterpret_cast<const std::uint8_t*>(passphrase.data()),
                     passphrase.size()};
  const BytesView salt{reinterpret_cast<const std::uint8_t*>(ssid.data()), ssid.size()};
  return pbkdf2_hmac_sha1(pw, salt, 4096, 32);
}

}  // namespace wile::crypto
