// IEEE 802.11i PRF and pairwise transient key derivation.
//
// The 4-way handshake expands the PMK into the PTK with
//   PRF-384(PMK, "Pairwise key expansion",
//           min(AA,SPA) || max(AA,SPA) || min(ANonce,SNonce) || max(...))
// yielding KCK (16 B, MICs EAPOL frames), KEK (16 B, wraps the GTK) and
// TK (16 B, the CCMP temporal key). IEEE 802.11-2012 §11.6.1.2.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "util/byte_buffer.hpp"
#include "util/mac_address.hpp"

namespace wile::crypto {

/// 802.11i PRF-n: iterates HMAC-SHA1(key, label || 0x00 || data || i) for
/// i = 0,1,2,... and concatenates digests until `output_len` bytes exist.
Bytes prf80211(BytesView key, std::string_view label, BytesView data,
               std::size_t output_len);

/// The three PTK components, in derivation order.
struct PairwiseTransientKey {
  std::array<std::uint8_t, 16> kck{};  // key confirmation key (EAPOL MIC)
  std::array<std::uint8_t, 16> kek{};  // key encryption key (GTK wrap)
  std::array<std::uint8_t, 16> tk{};   // temporal key (CCMP)
};

/// Derive the PTK from PMK, the two MAC addresses and the two nonces.
/// Argument order of (aa, spa) and (anonce, snonce) does not matter; the
/// derivation sorts them as the standard requires, so both sides derive
/// identical keys.
PairwiseTransientKey derive_ptk(BytesView pmk, const MacAddress& aa, const MacAddress& spa,
                                BytesView anonce, BytesView snonce);

}  // namespace wile::crypto
