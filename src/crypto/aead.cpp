#include "crypto/aead.hpp"

#include <cstring>

#include "crypto/aes_modes.hpp"

namespace wile::crypto {

Aead::Aead(BytesView key) : cipher_(key) {}

std::array<std::uint8_t, 16> Aead::tag_input(const Nonce& nonce, BytesView associated_data,
                                             BytesView ciphertext) const {
  // CMAC over an unambiguous encoding:
  //   nonce || len(ad) as u32be || ad || ciphertext
  ByteWriter w(nonce.size() + 4 + associated_data.size() + ciphertext.size());
  w.bytes(nonce.data(), nonce.size());
  w.u32be(static_cast<std::uint32_t>(associated_data.size()));
  w.bytes(associated_data);
  w.bytes(ciphertext);
  const Bytes mac_input = w.take();
  return aes_cmac(cipher_, mac_input);
}

Bytes Aead::seal(const Nonce& nonce, BytesView associated_data, BytesView plaintext) const {
  // CTR counter starts at 1; counter block 0 is reserved (EAX-style
  // domain separation from the tag computation).
  Bytes out = aes_ctr(cipher_, nonce, plaintext, 1);
  const auto tag = tag_input(nonce, associated_data, out);
  out.insert(out.end(), tag.begin(), tag.begin() + kTagSize);
  return out;
}

std::optional<Bytes> Aead::open(const Nonce& nonce, BytesView associated_data,
                                BytesView sealed) const {
  if (sealed.size() < kTagSize) return std::nullopt;
  const BytesView ciphertext = sealed.subspan(0, sealed.size() - kTagSize);
  const BytesView tag = sealed.subspan(sealed.size() - kTagSize);
  const auto expect = tag_input(nonce, associated_data, ciphertext);
  // Constant-time compare; the simulated channel is not a timing oracle,
  // but the habit is free.
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < kTagSize; ++i) diff |= static_cast<std::uint8_t>(expect[i] ^ tag[i]);
  if (diff != 0) return std::nullopt;
  return aes_ctr(cipher_, nonce, ciphertext, 1);
}

}  // namespace wile::crypto
