// AES modes of operation used by the Wi-LE security layer.
//
//  * AES-CTR — stream encryption of the payload. Encryption and
//    decryption are the same operation.
//  * AES-CMAC (NIST SP 800-38B / RFC 4493) — message authentication used
//    by the AEAD in aead.hpp.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "crypto/aes128.hpp"
#include "util/byte_buffer.hpp"

namespace wile::crypto {

/// AES-128-CTR keystream XOR. `nonce` forms the top 12 bytes of the
/// counter block; the bottom 4 bytes count blocks starting from
/// `initial_counter`. Apply twice to round-trip.
Bytes aes_ctr(const Aes128& cipher, const std::array<std::uint8_t, 12>& nonce,
              BytesView data, std::uint32_t initial_counter = 0);

/// AES-128-CMAC tag (full 16 bytes) over `data`.
std::array<std::uint8_t, 16> aes_cmac(const Aes128& cipher, BytesView data);

/// NIST AES Key Wrap (RFC 3394) — WPA2 uses it (keyed with the KEK) to
/// carry the GTK inside EAPOL-Key message 3. `plaintext` must be a
/// multiple of 8 bytes and at least 16; output is 8 bytes longer.
Bytes aes_key_wrap(const Aes128& kek, BytesView plaintext);

/// Inverse of aes_key_wrap. Returns nullopt if the integrity check value
/// does not match (wrong key or corrupted data).
std::optional<Bytes> aes_key_unwrap(const Aes128& kek, BytesView wrapped);

}  // namespace wile::crypto
