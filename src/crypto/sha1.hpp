// SHA-1 (FIPS 180-4).
//
// SHA-1 is broken for collision resistance but is exactly what WPA2-PSK
// specifies: the 4-way handshake derives keys with PBKDF2-HMAC-SHA1 and
// PRF-x built on HMAC-SHA1, and EAPOL-Key MICs for WPA2 key descriptor
// version 2 use HMAC-SHA1-128. We implement the real algorithm so the
// handshake frames carry genuine MICs that the peer verifies.
#pragma once

#include <array>
#include <cstdint>

#include "util/byte_buffer.hpp"

namespace wile::crypto {

class Sha1 {
 public:
  static constexpr std::size_t kDigestSize = 20;
  static constexpr std::size_t kBlockSize = 64;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha1();

  void update(BytesView data);
  /// Finalise and return the digest. The object must not be updated after
  /// finalising; call reset() to reuse it.
  Digest finish();
  void reset();

  /// One-shot convenience.
  static Digest hash(BytesView data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 5> h_{};
  std::array<std::uint8_t, kBlockSize> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_bits_ = 0;
};

}  // namespace wile::crypto
