// Authenticated encryption for Wi-LE payloads (EAX-style CTR + CMAC).
//
// The paper (§6 "Security") notes that Wi-LE beacons are cleartext and
// that "security can easily be provided by encrypting the data prior to
// its transmission". Vendor-IE space is precious (253 bytes total), so we
// use a compact construction: AES-128-CTR for confidentiality and an
// AES-CMAC tag truncated to 8 bytes binding ciphertext, nonce and the
// sender's identity (as associated data).
//
// Nonce discipline: Wi-LE senders use (device_id, sequence number) as the
// nonce, which never repeats for a given key as long as the 32-bit
// sequence counter does not wrap — at one packet per second that is
// ~136 years, far beyond a button-cell deployment.
#pragma once

#include <cstdint>
#include <optional>

#include "crypto/aes128.hpp"
#include "util/byte_buffer.hpp"

namespace wile::crypto {

class Aead {
 public:
  static constexpr std::size_t kTagSize = 8;
  static constexpr std::size_t kNonceSize = 12;
  using Nonce = std::array<std::uint8_t, kNonceSize>;

  explicit Aead(BytesView key);  // 16-byte key

  /// Returns ciphertext || tag (plaintext.size() + kTagSize bytes).
  Bytes seal(const Nonce& nonce, BytesView associated_data, BytesView plaintext) const;

  /// Verifies the tag and decrypts. Returns nullopt on any mismatch
  /// (wrong key, wrong nonce, tampered ciphertext or associated data,
  /// or input shorter than a tag).
  std::optional<Bytes> open(const Nonce& nonce, BytesView associated_data,
                            BytesView sealed) const;

 private:
  std::array<std::uint8_t, 16> tag_input(const Nonce& nonce, BytesView associated_data,
                                         BytesView ciphertext) const;

  Aes128 cipher_;
};

}  // namespace wile::crypto
