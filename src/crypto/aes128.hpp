// AES-128 block cipher (FIPS 197).
//
// Used as the primitive under AES-CTR, AES-CMAC and the CCM-style AEAD
// that protects Wi-LE payloads (paper §6 "Security": "security can be
// easily provided by encrypting the data prior to its transmission").
// Straightforward table-free byte-oriented implementation: this code path
// runs a handful of blocks per simulated packet, so clarity wins over
// throughput. Not hardened against timing side channels — it encrypts
// simulated traffic.
#pragma once

#include <array>
#include <cstdint>

#include "util/byte_buffer.hpp"

namespace wile::crypto {

class Aes128 {
 public:
  static constexpr std::size_t kBlockSize = 16;
  static constexpr std::size_t kKeySize = 16;
  using Block = std::array<std::uint8_t, kBlockSize>;
  using Key = std::array<std::uint8_t, kKeySize>;

  explicit Aes128(const Key& key);
  explicit Aes128(BytesView key);  // must be exactly 16 bytes

  [[nodiscard]] Block encrypt_block(const Block& plaintext) const;
  [[nodiscard]] Block decrypt_block(const Block& ciphertext) const;

 private:
  void expand_key(const Key& key);

  // 11 round keys of 16 bytes each.
  std::array<std::array<std::uint8_t, 16>, 11> round_keys_{};
};

}  // namespace wile::crypto
