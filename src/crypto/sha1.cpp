#include "crypto/sha1.hpp"

#include <cstring>

namespace wile::crypto {

namespace {
constexpr std::uint32_t rotl32(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}
}  // namespace

Sha1::Sha1() { reset(); }

void Sha1::reset() {
  h_ = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u};
  buffer_len_ = 0;
  total_bits_ = 0;
}

void Sha1::update(BytesView data) {
  total_bits_ += static_cast<std::uint64_t>(data.size()) * 8;
  std::size_t offset = 0;
  // Fill a partially-buffered block first.
  if (buffer_len_ > 0) {
    const std::size_t take = std::min(kBlockSize - buffer_len_, data.size());
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset += take;
    if (buffer_len_ == kBlockSize) {
      process_block(buffer_.data());
      buffer_len_ = 0;
    }
  }
  // Whole blocks straight from the input.
  while (data.size() - offset >= kBlockSize) {
    process_block(data.data() + offset);
    offset += kBlockSize;
  }
  // Stash the tail.
  const std::size_t tail = data.size() - offset;
  if (tail > 0) {
    std::memcpy(buffer_.data(), data.data() + offset, tail);
    buffer_len_ = tail;
  }
}

Sha1::Digest Sha1::finish() {
  // Append 0x80, pad with zeros to 56 mod 64, then the bit length big-endian.
  std::array<std::uint8_t, kBlockSize * 2> pad{};
  std::size_t pad_len = 0;
  pad[pad_len++] = 0x80;
  const std::size_t used = buffer_len_;
  std::size_t target = (used < 56) ? 56 : 56 + kBlockSize;
  pad_len = target - used;
  std::array<std::uint8_t, 8> len_bytes{};
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>(total_bits_ >> (56 - 8 * i));
  }
  pad[0] = 0x80;  // rest already zero
  // Note: update() mutates total_bits_, so capture the padded message here
  // by feeding raw blocks without going back through update's counter.
  // Simpler: temporarily save total and restore.
  const std::uint64_t saved_bits = total_bits_;
  update(BytesView{pad.data(), pad_len});
  update(len_bytes);
  total_bits_ = saved_bits;  // irrelevant after finish; kept tidy for reset()

  Digest out{};
  for (std::size_t i = 0; i < 5; ++i) {
    out[i * 4 + 0] = static_cast<std::uint8_t>(h_[i] >> 24);
    out[i * 4 + 1] = static_cast<std::uint8_t>(h_[i] >> 16);
    out[i * 4 + 2] = static_cast<std::uint8_t>(h_[i] >> 8);
    out[i * 4 + 3] = static_cast<std::uint8_t>(h_[i]);
  }
  return out;
}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[i * 4]) << 24) |
           (static_cast<std::uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<std::uint32_t>(block[i * 4 + 2]) << 8) |
           static_cast<std::uint32_t>(block[i * 4 + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t temp = rotl32(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl32(b, 30);
    b = a;
    a = temp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

Sha1::Digest Sha1::hash(BytesView data) {
  Sha1 s;
  s.update(data);
  return s.finish();
}

}  // namespace wile::crypto
