#include "crypto/prf80211.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "crypto/hmac_sha1.hpp"

namespace wile::crypto {

Bytes prf80211(BytesView key, std::string_view label, BytesView data,
               std::size_t output_len) {
  Bytes out;
  out.reserve(output_len + Sha1::kDigestSize);
  for (std::uint8_t counter = 0; out.size() < output_len; ++counter) {
    HmacSha1 mac(key);
    mac.update(BytesView{reinterpret_cast<const std::uint8_t*>(label.data()), label.size()});
    const std::uint8_t zero = 0;
    mac.update(BytesView{&zero, 1});
    mac.update(data);
    mac.update(BytesView{&counter, 1});
    const auto digest = mac.finish();
    out.insert(out.end(), digest.begin(), digest.end());
  }
  out.resize(output_len);
  return out;
}

PairwiseTransientKey derive_ptk(BytesView pmk, const MacAddress& aa, const MacAddress& spa,
                                BytesView anonce, BytesView snonce) {
  if (anonce.size() != 32 || snonce.size() != 32) {
    throw std::invalid_argument("derive_ptk: nonces must be 32 bytes");
  }
  const MacAddress& mac_min = std::min(aa, spa);
  const MacAddress& mac_max = std::max(aa, spa);
  const bool a_first = std::lexicographical_compare(anonce.begin(), anonce.end(),
                                                    snonce.begin(), snonce.end());
  const BytesView nonce_min = a_first ? anonce : snonce;
  const BytesView nonce_max = a_first ? snonce : anonce;

  ByteWriter w(12 + 64);
  w.bytes(mac_min.octets().data(), MacAddress::kSize);
  w.bytes(mac_max.octets().data(), MacAddress::kSize);
  w.bytes(nonce_min);
  w.bytes(nonce_max);
  const Bytes seed = w.take();

  const Bytes ptk = prf80211(pmk, "Pairwise key expansion", seed, 48);
  PairwiseTransientKey out;
  std::memcpy(out.kck.data(), ptk.data(), 16);
  std::memcpy(out.kek.data(), ptk.data() + 16, 16);
  std::memcpy(out.tk.data(), ptk.data() + 32, 16);
  return out;
}

}  // namespace wile::crypto
