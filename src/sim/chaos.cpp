#include "sim/chaos.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace wile::sim {
namespace {

constexpr FaultKind kAllKinds[] = {
    FaultKind::kApOutage,       FaultKind::kJammer,
    FaultKind::kNoiseRise,      FaultKind::kPerMultiplier,
    FaultKind::kLossFloor,      FaultKind::kNodeLossFloor,
    FaultKind::kRadioDeaf,      FaultKind::kClockDriftStep,
    FaultKind::kBrownOut,       FaultKind::kBrownOutAll,
    FaultKind::kHarvestFade,    FaultKind::kRfDrought,
};

bool is_one_shot(FaultKind kind) {
  return kind == FaultKind::kClockDriftStep || kind == FaultKind::kBrownOut ||
         kind == FaultKind::kBrownOutAll;
}

bool is_device_targeted(FaultKind kind) {
  return kind == FaultKind::kNodeLossFloor || kind == FaultKind::kRadioDeaf ||
         kind == FaultKind::kClockDriftStep || kind == FaultKind::kBrownOut;
}

}  // namespace

const char* kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kApOutage: return "ap_outage";
    case FaultKind::kJammer: return "jammer";
    case FaultKind::kNoiseRise: return "noise_rise";
    case FaultKind::kPerMultiplier: return "per_multiplier";
    case FaultKind::kLossFloor: return "loss_floor";
    case FaultKind::kNodeLossFloor: return "node_loss_floor";
    case FaultKind::kRadioDeaf: return "radio_deaf";
    case FaultKind::kClockDriftStep: return "clock_drift_step";
    case FaultKind::kBrownOut: return "brown_out";
    case FaultKind::kBrownOutAll: return "brown_out_all";
    case FaultKind::kHarvestFade: return "harvest_fade";
    case FaultKind::kRfDrought: return "rf_drought";
  }
  return "unknown";
}

std::optional<FaultKind> kind_from_name(const std::string& name) {
  for (const FaultKind kind : kAllKinds) {
    if (name == kind_name(kind)) return kind;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Generation.
// ---------------------------------------------------------------------------

Campaign generate_campaign(std::uint64_t seed, const ChaosConfig& config) {
  Campaign campaign;
  campaign.seed = seed;
  campaign.horizon_us = config.horizon.count();

  // Offset the seed so a campaign never shares a stream with the
  // scenario it runs against (ScenarioBuilder derives its streams from
  // the same master seed).
  Rng rng{seed ^ 0xC7A0'5EEDull};

  std::vector<FaultKind> kinds(config.kinds);
  if (kinds.empty()) kinds.assign(std::begin(kAllKinds), std::end(kAllKinds));

  const int lo = std::max(0, config.min_actions);
  const int hi = std::max(lo, config.max_actions);
  const int n_actions = lo + static_cast<int>(rng.below(
                                 static_cast<std::uint64_t>(hi - lo) + 1));

  for (int i = 0; i < n_actions; ++i) {
    FaultAction action;
    action.kind = kinds[rng.below(kinds.size())];

    // Windows start inside the first 90% of the horizon so even the
    // longest draw gets some open time; one-shots land anywhere.
    const auto start_span = static_cast<std::uint64_t>(
        is_one_shot(action.kind) ? campaign.horizon_us
                                 : campaign.horizon_us * 9 / 10);
    action.start_us = static_cast<std::int64_t>(rng.below(start_span + 1));

    if (!is_one_shot(action.kind)) {
      // Log-uniform-ish duration, 100 ms .. 25.6 s, clamped into the
      // horizon (a window reaching past it would never unwind).
      std::int64_t duration = 100'000ll << rng.below(9);
      duration = std::min(duration, campaign.horizon_us - action.start_us);
      action.duration_us = std::max<std::int64_t>(duration, 1000);
    }

    switch (action.kind) {
      case FaultKind::kJammer:
        action.magnitude = 0.05 + rng.uniform() * 0.55;  // duty cycle
        break;
      case FaultKind::kNoiseRise:
        action.magnitude = 2.0 + rng.uniform() * 18.0;  // dB
        break;
      case FaultKind::kPerMultiplier:
        action.magnitude = 1.5 + rng.uniform() * 6.5;
        break;
      case FaultKind::kLossFloor:
      case FaultKind::kNodeLossFloor:
        action.magnitude = 0.05 + rng.uniform() * 0.55;
        break;
      case FaultKind::kClockDriftStep:
        // Up to 20% skew either way — far past crystal reality, which
        // is the point: the receiver's scan window has to cope.
        action.magnitude =
            (rng.chance(0.5) ? 1.0 : -1.0) * (1000.0 + rng.uniform() * 199000.0);
        break;
      case FaultKind::kHarvestFade:
        action.magnitude = rng.uniform() * 0.8;  // scale toward darkness
        break;
      default:
        break;  // kApOutage/kRadioDeaf/kBrownOut*/kRfDrought: no magnitude
    }

    if (is_device_targeted(action.kind)) {
      action.target = static_cast<std::int32_t>(
          rng.below(static_cast<std::uint64_t>(std::max(1, config.n_devices))));
    }
    campaign.actions.push_back(action);
  }

  // Chronological scripts read better in repro files; stable so
  // same-start actions keep their draw order.
  std::stable_sort(campaign.actions.begin(), campaign.actions.end(),
                   [](const FaultAction& a, const FaultAction& b) {
                     return a.start_us < b.start_us;
                   });
  return campaign;
}

// ---------------------------------------------------------------------------
// Arming a campaign against a scenario.
// ---------------------------------------------------------------------------

std::size_t schedule_campaign(const Campaign& campaign,
                              const ChaosTargets& targets) {
  if (targets.faults == nullptr) {
    throw std::invalid_argument("schedule_campaign: null FaultInjector");
  }
  FaultInjector& fi = *targets.faults;
  std::size_t armed = 0;

  for (const FaultAction& action : campaign.actions) {
    const TimePoint start{Duration{action.start_us}};
    const Duration duration{action.duration_us};
    if (!is_one_shot(action.kind) && action.duration_us <= 0) continue;

    // Resolve the device binding once; actions pointing at a device the
    // scenario doesn't have are skipped, deterministically.
    const auto device_index = static_cast<std::size_t>(action.target);
    const bool has_device =
        action.target >= 0 && device_index < targets.device_nodes.size();

    switch (action.kind) {
      case FaultKind::kApOutage:
        if (targets.ap_stop && targets.ap_start) {
          fi.window(start, duration, targets.ap_stop, targets.ap_start);
          ++armed;
        } else if (!targets.gateway_nodes.empty()) {
          // No real AP in the scenario: the closest observable failure
          // is every gateway going deaf for the window.
          for (const NodeId node : targets.gateway_nodes) {
            fi.radio_deaf(start, duration, node);
          }
          ++armed;
        }
        break;
      case FaultKind::kJammer: {
        JammerConfig config;
        config.position = targets.jammer_position;
        config.duty_cycle = action.magnitude;
        fi.jammer(start, duration, config);
        ++armed;
        break;
      }
      case FaultKind::kNoiseRise:
        fi.noise_floor_rise(start, duration, action.magnitude);
        ++armed;
        break;
      case FaultKind::kPerMultiplier:
        fi.per_multiplier(start, duration, action.magnitude);
        ++armed;
        break;
      case FaultKind::kLossFloor:
        fi.per_floor(start, duration, action.magnitude);
        ++armed;
        break;
      case FaultKind::kNodeLossFloor:
        if (has_device) {
          fi.per_floor(start, duration, action.magnitude,
                       targets.device_nodes[device_index]);
          ++armed;
        }
        break;
      case FaultKind::kRadioDeaf:
        if (has_device) {
          fi.radio_deaf(start, duration, targets.device_nodes[device_index]);
          ++armed;
        }
        break;
      case FaultKind::kClockDriftStep:
        if (action.target >= 0 && device_index < targets.clock_drift.size() &&
            targets.clock_drift[device_index]) {
          fi.at(start, [fn = targets.clock_drift[device_index],
                        ppm = action.magnitude] { fn(ppm); });
          ++armed;
        }
        break;
      case FaultKind::kBrownOut:
        if (action.target >= 0 && device_index < targets.energy.size() &&
            targets.energy[device_index] != nullptr) {
          fi.brown_out(start, *targets.energy[device_index]);
          ++armed;
        }
        break;
      case FaultKind::kBrownOutAll:
        // Hits whatever energy targets are registered with the injector
        // at fire time; a no-op for mains-powered fleets.
        fi.brown_out_all(start);
        ++armed;
        break;
      case FaultKind::kHarvestFade:
        fi.harvest_fade(start, duration, action.magnitude);
        ++armed;
        break;
      case FaultKind::kRfDrought:
        fi.rf_drought(start, duration);
        ++armed;
        break;
    }
  }
  return armed;
}

// ---------------------------------------------------------------------------
// JSON. Writer builds strings directly; the reader is a minimal
// recursive-descent parser for the subset we emit (no external deps —
// same reasoning as the fprintf writers in bench/).
// ---------------------------------------------------------------------------

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_actions(std::string& out, const Campaign& campaign,
                    const char* indent) {
  char buf[256];
  for (std::size_t i = 0; i < campaign.actions.size(); ++i) {
    const FaultAction& a = campaign.actions[i];
    // %.17g: doubles survive the round-trip bit-exactly.
    std::snprintf(buf, sizeof buf,
                  "%s{\"kind\": \"%s\", \"start_us\": %lld, "
                  "\"duration_us\": %lld, \"magnitude\": %.17g, "
                  "\"target\": %d}%s\n",
                  indent, kind_name(a.kind),
                  static_cast<long long>(a.start_us),
                  static_cast<long long>(a.duration_us), a.magnitude, a.target,
                  i + 1 < campaign.actions.size() ? "," : "");
    out += buf;
  }
}

std::string campaign_body(const Campaign& campaign, const char* pad) {
  char buf[160];
  std::string out;
  std::snprintf(buf, sizeof buf,
                "%s  \"schema\": \"wile-chaos-campaign-v1\",\n"
                "%s  \"seed\": %llu,\n%s  \"horizon_us\": %lld,\n"
                "%s  \"actions\": [\n",
                pad, pad, static_cast<unsigned long long>(campaign.seed), pad,
                static_cast<long long>(campaign.horizon_us), pad);
  out += buf;
  append_actions(out, campaign, (std::string(pad) + "    ").c_str());
  out += pad;
  out += "  ]\n";
  return out;
}

// --- reader ---

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string raw;  // original number token, for exact integer parses
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  [[nodiscard]] std::int64_t as_i64() const {
    return std::strtoll(raw.c_str(), nullptr, 10);
  }
  [[nodiscard]] std::uint64_t as_u64() const {
    return std::strtoull(raw.c_str(), nullptr, 10);
  }
};

struct JsonParser {
  const char* p;
  const char* end;
  bool ok = true;

  explicit JsonParser(const std::string& text)
      : p(text.data()), end(text.data() + text.size()) {}

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) ++p;
  }
  bool consume(char c) {
    skip_ws();
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    ok = false;
    return false;
  }
  bool literal(const char* word) {
    const std::size_t n = std::strlen(word);
    if (static_cast<std::size_t>(end - p) >= n && std::strncmp(p, word, n) == 0) {
      p += n;
      return true;
    }
    ok = false;
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    JsonValue v;
    if (p >= end) {
      ok = false;
      return v;
    }
    switch (*p) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"':
        v.type = JsonValue::Type::kString;
        v.string = parse_string();
        return v;
      case 't':
        v.type = JsonValue::Type::kBool;
        v.boolean = true;
        literal("true");
        return v;
      case 'f':
        v.type = JsonValue::Type::kBool;
        literal("false");
        return v;
      case 'n':
        literal("null");
        return v;
      default: return parse_number();
    }
  }

  std::string parse_string() {
    std::string out;
    if (!consume('"')) return out;
    while (p < end && *p != '"') {
      if (*p == '\\' && p + 1 < end) {
        ++p;
        switch (*p) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (end - p < 5) {
              ok = false;
              return out;
            }
            char hex[5] = {p[1], p[2], p[3], p[4], 0};
            const long code = std::strtol(hex, nullptr, 16);
            // We only emit \u for control characters; decode the
            // single-byte range and flatten anything else.
            out += code < 0x80 ? static_cast<char>(code) : '?';
            p += 4;
            break;
          }
          default: ok = false; return out;
        }
        ++p;
      } else {
        out += *p++;
      }
    }
    if (!consume('"')) ok = false;
    return out;
  }

  JsonValue parse_number() {
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    const char* start = p;
    if (p < end && (*p == '-' || *p == '+')) ++p;
    while (p < end && (std::isdigit(static_cast<unsigned char>(*p)) != 0 ||
                       *p == '.' || *p == 'e' || *p == 'E' || *p == '-' ||
                       *p == '+')) {
      ++p;
    }
    if (p == start) {
      ok = false;
      return v;
    }
    v.raw.assign(start, p);
    v.number = std::strtod(v.raw.c_str(), nullptr);
    return v;
  }

  JsonValue parse_array() {
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    consume('[');
    skip_ws();
    if (p < end && *p == ']') {
      ++p;
      return v;
    }
    while (ok) {
      v.array.push_back(parse_value());
      skip_ws();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      consume(']');
      break;
    }
    return v;
  }

  JsonValue parse_object() {
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    consume('{');
    skip_ws();
    if (p < end && *p == '}') {
      ++p;
      return v;
    }
    while (ok) {
      skip_ws();
      std::string key = parse_string();
      consume(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      consume('}');
      break;
    }
    return v;
  }
};

std::optional<Campaign> campaign_from_value(const JsonValue& doc) {
  if (doc.type != JsonValue::Type::kObject) return std::nullopt;
  const JsonValue* schema = doc.find("schema");
  if (schema == nullptr || schema->string != "wile-chaos-campaign-v1") {
    return std::nullopt;
  }
  const JsonValue* seed = doc.find("seed");
  const JsonValue* horizon = doc.find("horizon_us");
  const JsonValue* actions = doc.find("actions");
  if (seed == nullptr || horizon == nullptr || actions == nullptr ||
      actions->type != JsonValue::Type::kArray) {
    return std::nullopt;
  }

  Campaign campaign;
  campaign.seed = seed->as_u64();
  campaign.horizon_us = horizon->as_i64();
  for (const JsonValue& entry : actions->array) {
    const JsonValue* kind = entry.find("kind");
    const JsonValue* start = entry.find("start_us");
    if (kind == nullptr || start == nullptr) return std::nullopt;
    const auto parsed = kind_from_name(kind->string);
    if (!parsed) return std::nullopt;

    FaultAction action;
    action.kind = *parsed;
    action.start_us = start->as_i64();
    if (const JsonValue* v = entry.find("duration_us")) action.duration_us = v->as_i64();
    if (const JsonValue* v = entry.find("magnitude")) action.magnitude = v->number;
    if (const JsonValue* v = entry.find("target")) {
      action.target = static_cast<std::int32_t>(v->as_i64());
    }
    campaign.actions.push_back(action);
  }
  return campaign;
}

}  // namespace

std::string campaign_to_json(const Campaign& campaign) {
  return "{\n" + campaign_body(campaign, "") + "}\n";
}

std::optional<Campaign> campaign_from_json(const std::string& json) {
  JsonParser parser{json};
  const JsonValue doc = parser.parse_value();
  if (!parser.ok) return std::nullopt;
  return campaign_from_value(doc);
}

// ---------------------------------------------------------------------------
// Shrinking: ddmin over the action list. Each probe is a full scenario
// replay, so the budget is the scarce resource, not the bookkeeping.
// ---------------------------------------------------------------------------

ShrinkResult shrink_campaign(
    const Campaign& failing,
    const std::function<bool(const Campaign&)>& reproduces,
    std::size_t max_runs) {
  ShrinkResult result;
  result.original_actions = failing.actions.size();
  result.minimal = failing;

  const auto with_actions = [&failing](std::vector<FaultAction> actions) {
    Campaign c;
    c.seed = failing.seed;
    c.horizon_us = failing.horizon_us;
    c.actions = std::move(actions);
    return c;
  };

  // The input must reproduce before shrinking means anything — a flaky
  // predicate would otherwise "shrink" to garbage.
  ++result.runs;
  if (!reproduces(failing)) return result;
  result.reproduced = true;

  std::vector<FaultAction> current = failing.actions;
  std::size_t granularity = 2;
  while (current.size() >= 2 && result.runs < max_runs) {
    granularity = std::min(granularity, current.size());
    const std::size_t chunk =
        (current.size() + granularity - 1) / granularity;
    bool reduced = false;
    for (std::size_t i = 0; i < granularity && result.runs < max_runs; ++i) {
      // Complement of subset i: drop one chunk, keep the rest in order.
      std::vector<FaultAction> candidate;
      candidate.reserve(current.size());
      for (std::size_t j = 0; j < current.size(); ++j) {
        if (j / chunk != i) candidate.push_back(current[j]);
      }
      if (candidate.size() == current.size()) continue;
      ++result.runs;
      if (reproduces(with_actions(candidate))) {
        current = std::move(candidate);
        granularity = std::max<std::size_t>(2, granularity - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      // At granularity == size the probes were single-action removals:
      // the set is 1-minimal.
      if (granularity >= current.size()) break;
      granularity = std::min(current.size(), granularity * 2);
    }
  }

  // One last probe: does the violation even need the surviving action?
  // An empty campaign reproducing means the scenario (or the oracle) is
  // broken at baseline — the most useful possible repro.
  if (current.size() == 1 && result.runs < max_runs) {
    ++result.runs;
    if (reproduces(with_actions({}))) current.clear();
  }

  result.minimal = with_actions(std::move(current));
  return result;
}

// ---------------------------------------------------------------------------
// Repro files.
// ---------------------------------------------------------------------------

bool write_repro_file(const std::string& path, const ReproFile& repro) {
  std::string out = "{\n  \"schema\": \"wile-chaos-repro-v1\",\n  \"scenario\": ";
  append_escaped(out, repro.scenario);
  char buf[192];
  std::snprintf(buf, sizeof buf, ",\n  \"scenario_seed\": %llu,\n",
                static_cast<unsigned long long>(repro.scenario_seed));
  out += buf;
  out += "  \"violation\": {\n    \"invariant\": ";
  append_escaped(out, repro.invariant);
  out += ",\n    \"detail\": ";
  append_escaped(out, repro.detail);
  std::snprintf(buf, sizeof buf, ",\n    \"at_us\": %lld,\n    \"node\": %llu\n  },\n",
                static_cast<long long>(repro.violation_at_us),
                static_cast<unsigned long long>(repro.node));
  out += buf;
  out += "  \"campaign\": {\n";
  out += campaign_body(repro.campaign, "  ");
  out += "  }\n}\n";

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool written = std::fwrite(out.data(), 1, out.size(), f) == out.size();
  return std::fclose(f) == 0 && written;
}

std::optional<ReproFile> load_repro_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);

  JsonParser parser{text};
  const JsonValue doc = parser.parse_value();
  if (!parser.ok || doc.type != JsonValue::Type::kObject) return std::nullopt;
  const JsonValue* schema = doc.find("schema");
  if (schema == nullptr || schema->string != "wile-chaos-repro-v1") {
    return std::nullopt;
  }
  const JsonValue* campaign = doc.find("campaign");
  const JsonValue* violation = doc.find("violation");
  if (campaign == nullptr || violation == nullptr) return std::nullopt;
  auto parsed = campaign_from_value(*campaign);
  if (!parsed) return std::nullopt;

  ReproFile repro;
  repro.campaign = std::move(*parsed);
  if (const JsonValue* v = doc.find("scenario")) repro.scenario = v->string;
  if (const JsonValue* v = doc.find("scenario_seed")) repro.scenario_seed = v->as_u64();
  if (const JsonValue* v = violation->find("invariant")) repro.invariant = v->string;
  if (const JsonValue* v = violation->find("detail")) repro.detail = v->string;
  if (const JsonValue* v = violation->find("at_us")) repro.violation_at_us = v->as_i64();
  if (const JsonValue* v = violation->find("node")) repro.node = v->as_u64();
  return repro;
}

}  // namespace wile::sim
