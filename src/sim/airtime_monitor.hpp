// Channel occupancy measurement.
//
// A passive probe that integrates how long the medium around it is busy
// — the number behind coexistence statements like "a 2 Hz Wi-LE sensor
// occupies ~0.01 % of airtime" (E11). It accounts every transmission it
// can hear, decodable or not (a collision still occupies the channel).
#pragma once

#include <cstdint>

#include "sim/medium.hpp"
#include "sim/scheduler.hpp"

namespace wile::sim {

class AirtimeMonitor : public MediumClient {
 public:
  AirtimeMonitor(Scheduler& scheduler, Medium& medium, Position position)
      : scheduler_(scheduler), start_(scheduler.now()) {
    medium.attach(this, position);
  }

  /// Fraction of wall-clock time the channel was occupied by audible
  /// transmissions since construction (or the last reset).
  [[nodiscard]] double busy_fraction() const {
    const Duration elapsed = scheduler_.now() - start_;
    if (elapsed.count() <= 0) return 0.0;
    return static_cast<double>(busy_.count()) / static_cast<double>(elapsed.count());
  }

  [[nodiscard]] Duration busy_time() const { return busy_; }
  [[nodiscard]] std::uint64_t frames_heard() const { return frames_; }

  void reset() {
    start_ = scheduler_.now();
    busy_ = Duration{0};
    frames_ = 0;
  }

  void on_frame(const RxFrame& frame) override { account(frame); }
  void on_corrupt_frame(const RxFrame& frame, bool) override { account(frame); }
  [[nodiscard]] bool rx_enabled() const override { return true; }

 private:
  void account(const RxFrame& frame) {
    // Overlapping transmissions double-count here; for occupancy that is
    // the right call only up to saturation. Clamp at delivery time is
    // not possible (frames arrive at their end), so we simply sum — at
    // the loads our benches run, overlap among *audible* frames is rare.
    busy_ += frame.airtime;
    ++frames_;
  }

  Scheduler& scheduler_;
  TimePoint start_;
  Duration busy_{};
  std::uint64_t frames_ = 0;
};

}  // namespace wile::sim
