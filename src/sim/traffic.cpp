#include "sim/traffic.hpp"

namespace wile::sim {

TrafficSink::TrafficSink(Scheduler& scheduler, Medium& medium, Position position,
                         MacAddress mac)
    : scheduler_(scheduler), medium_(medium), mac_(mac) {
  node_id_ = medium_.attach(this, position);
}

bool TrafficSink::rx_enabled() const { return !medium_.transmitting(node_id_); }

void TrafficSink::on_frame(const RxFrame& frame) {
  if (dot11::is_control_frame(frame.mpdu)) {
    // Answer RTS aimed at us with a CTS after SIFS, passing the NAV on
    // (minus the SIFS and CTS airtime already elapsed by then).
    if (auto rts = dot11::parse_rts(frame.mpdu); rts && rts->fcs_ok &&
                                                 rts->receiver == mac_) {
      const Duration spent = phy::MacTiming::kSifs + phy::ack_airtime();
      const std::uint16_t remaining =
          rts->duration_us > spent.count()
              ? static_cast<std::uint16_t>(rts->duration_us - spent.count())
              : 0;
      const MacAddress ta = rts->transmitter;
      scheduler_.schedule_in(phy::MacTiming::kSifs, [this, ta, remaining] {
        if (medium_.transmitting(node_id_)) return;
        TxRequest req;
        req.mpdu = dot11::build_cts(ta, remaining);
        req.airtime = phy::ack_airtime();
        req.rate = phy::kControlResponseRate;
        req.tx_power_dbm = 20.0;
        medium_.transmit(node_id_, std::move(req));
      });
    }
    return;
  }
  auto parsed = dot11::parse_mpdu(frame.mpdu);
  if (!parsed || !parsed->fcs_ok) return;
  if (parsed->header.addr1 != mac_) return;
  ++received_;
  bytes_ += parsed->body.size();
  const MacAddress ta = parsed->header.addr2;
  scheduler_.schedule_in(phy::MacTiming::kSifs, [this, ta] {
    if (medium_.transmitting(node_id_)) return;  // half-duplex clash: drop the ACK
    TxRequest req;
    req.mpdu = dot11::build_ack(ta);
    req.airtime = phy::ack_airtime();
    req.rate = phy::kControlResponseRate;
    req.tx_power_dbm = 20.0;
    medium_.transmit(node_id_, std::move(req));
  });
}

TrafficSource::TrafficSource(Scheduler& scheduler, Medium& medium, Position position,
                             TrafficConfig config, Rng rng)
    : scheduler_(scheduler), medium_(medium), config_(config), rng_(rng) {
  node_id_ = medium_.attach(this, position);
  CsmaConfig csma_cfg;
  csma_cfg.tx_power_dbm = config_.tx_power_dbm;
  if (config_.use_rts) csma_cfg.rts_threshold = 0;  // protect every frame
  csma_ = std::make_unique<Csma>(scheduler_, medium_, node_id_, rng_.fork(), csma_cfg);
}

bool TrafficSource::rx_enabled() const { return !medium_.transmitting(node_id_); }

void TrafficSource::on_frame(const RxFrame& frame) {
  if (auto ack = dot11::parse_ack(frame.mpdu); ack && ack->fcs_ok) {
    if (ack->receiver == config_.source_mac) csma_->notify_ack();
    return;
  }
  if (auto cts = dot11::parse_cts(frame.mpdu); cts && cts->fcs_ok) {
    if (cts->receiver == config_.source_mac) {
      csma_->notify_cts();
    } else {
      csma_->observe_nav(cts->duration_us);  // someone else's reservation
    }
    return;
  }
  if (auto rts = dot11::parse_rts(frame.mpdu); rts && rts->fcs_ok) {
    if (rts->receiver != config_.source_mac) csma_->observe_nav(rts->duration_us);
    return;
  }
  if (auto parsed = dot11::parse_mpdu(frame.mpdu);
      parsed && parsed->fcs_ok && parsed->header.addr1 != config_.source_mac) {
    csma_->observe_nav(parsed->header.duration_id);
  }
}

void TrafficSource::start() {
  if (running_) return;
  running_ = true;
  schedule_next();
}

void TrafficSource::stop() { running_ = false; }

void TrafficSource::schedule_next() {
  // Poisson arrivals at the offered rate.
  const double mean_gap_us = 1e6 / config_.frames_per_second;
  const double gap = -mean_gap_us * std::log(1.0 - rng_.uniform());
  scheduler_.schedule_in(Duration{static_cast<std::int64_t>(gap) + 1}, [this] {
    if (!running_) return;
    offer_frame();
    schedule_next();
  });
}

void TrafficSource::offer_frame() {
  ++offered_;
  Bytes payload(config_.frame_bytes);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng_.below(256));
  const Bytes mpdu =
      dot11::build_data_to_ds(config_.sink_mac, config_.source_mac, config_.sink_mac,
                              seq_++ & 0x0fff, payload, /*protected_frame=*/false);
  std::optional<RtsAddresses> rts;
  if (config_.use_rts) rts = RtsAddresses{config_.sink_mac, config_.source_mac};
  csma_->send(
      mpdu, config_.rate, /*expect_ack=*/true,
      [this](const Csma::Result& r) {
        if (r.success) {
          ++delivered_;
        } else {
          ++failed_;
        }
      },
      rts);
}

}  // namespace wile::sim
