#include "sim/fault.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wile::sim {

// ---------------------------------------------------------------------------
// Jammer: a MediumClient that transmits undecodable bursts on a fixed
// cadence while active. It never receives (rx_enabled false) and its
// garbage frames fail every parser, so its only effect is collisions,
// CSMA deference and NAV-free airtime occupancy — exactly what a
// non-802.11 interferer looks like to a WiFi radio.
// ---------------------------------------------------------------------------

class FaultInjector::Jammer : public MediumClient {
 public:
  Jammer(Scheduler& scheduler, Medium& medium, JammerConfig config, FaultStats& stats,
         Rng rng)
      : scheduler_(scheduler), medium_(medium), config_(config), stats_(stats) {
    config_.duty_cycle = std::clamp(config_.duty_cycle, 0.0, 0.95);
    node_id_ = medium_.attach(this, config_.position);
    // Garbage payload: random but fixed per jammer, so runs are seeded.
    garbage_.resize(std::max<std::size_t>(config_.frame_bytes, 4));
    for (auto& b : garbage_) b = static_cast<std::uint8_t>(rng.below(256));
  }

  ~Jammer() override { deactivate(); }

  [[nodiscard]] NodeId node_id() const { return node_id_; }

  void activate() {
    if (active_) return;
    active_ = true;
    burst();
  }

  void deactivate() {
    active_ = false;
    if (next_burst_) {
      scheduler_.cancel(*next_burst_);
      next_burst_.reset();
    }
  }

  // --- sim::MediumClient -----------------------------------------------------
  void on_frame(const RxFrame&) override {}
  [[nodiscard]] bool rx_enabled() const override { return false; }

 private:
  void burst() {
    next_burst_.reset();
    if (!active_) return;
    const auto burst_us = static_cast<std::int64_t>(
        config_.duty_cycle * static_cast<double>(config_.period.count()));
    if (burst_us > 0 && !medium_.transmitting(node_id_)) {
      TxRequest req;
      req.mpdu = garbage_;
      req.airtime = Duration{burst_us};
      req.tx_power_dbm = config_.tx_power_dbm;
      // No rate: receivers that survive the collision check run the
      // (irrelevant) non-WiFi PER model and then fail to parse anyway.
      medium_.transmit(node_id_, std::move(req));
      ++stats_.jammer_bursts;
    }
    next_burst_ = scheduler_.schedule_in(config_.period, [this] { burst(); });
  }

  Scheduler& scheduler_;
  Medium& medium_;
  JammerConfig config_;
  FaultStats& stats_;
  NodeId node_id_{};
  Bytes garbage_;
  bool active_ = false;
  std::optional<EventId> next_burst_;
};

// ---------------------------------------------------------------------------
// FaultInjector.
// ---------------------------------------------------------------------------

FaultInjector::FaultInjector(Scheduler& scheduler, Medium& medium, Rng rng)
    : scheduler_(scheduler), medium_(medium), rng_(rng) {}

FaultInjector::~FaultInjector() {
  for (EventId id : pending_) scheduler_.cancel(id);
}

void FaultInjector::track_window(WindowKind kind, std::uint32_t target,
                                 TimePoint start, Duration duration) {
  TrackedWindow w;
  w.key = (static_cast<std::uint64_t>(kind) << 32) | target;
  w.start_us = start.us();
  w.end_us = (start + duration).us();
  for (const TrackedWindow& other : tracked_) {
    if (other.key == w.key && w.start_us < other.end_us &&
        other.start_us < w.end_us) {
      ++stats_.windows_overlapping;
      break;  // warn once per newly scheduled window
    }
  }
  tracked_.push_back(w);
}

void FaultInjector::window(TimePoint start, Duration duration,
                           std::function<void()> on_start, std::function<void()> on_end) {
  // end <= start is a script bug (the window would never be open, or the
  // unwind would fire before the apply); reject when scheduled, not
  // hours of simulated time later when the events fire.
  if (duration.count() <= 0) {
    throw std::invalid_argument("FaultInjector: window end must follow start");
  }
  ++stats_.windows_scheduled;
  pending_.push_back(scheduler_.schedule_at(start, [this, on_start = std::move(on_start)] {
    ++stats_.windows_started;
    ++stats_.fault_windows_active;
    if (on_start) on_start();
  }));
  pending_.push_back(
      scheduler_.schedule_at(start + duration, [this, on_end = std::move(on_end)] {
        ++stats_.windows_ended;
        --stats_.fault_windows_active;
        if (on_end) on_end();
      }));
}

void FaultInjector::at(TimePoint when, std::function<void()> fn) {
  pending_.push_back(scheduler_.schedule_at(when, [this, fn = std::move(fn)] {
    ++stats_.events_fired;
    if (fn) fn();
  }));
}

void FaultInjector::noise_floor_rise(TimePoint start, Duration duration, double delta_db) {
  if (!std::isfinite(delta_db)) {
    throw std::invalid_argument("FaultInjector: non-finite noise delta");
  }
  track_window(WindowKind::kNoise, kGlobalTarget, start, duration);
  window(
      start, duration,
      [this, delta_db] { medium_.set_noise_offset_db(medium_.noise_offset_db() + delta_db); },
      [this, delta_db] {
        medium_.set_noise_offset_db(medium_.noise_offset_db() - delta_db);
      });
}

void FaultInjector::per_multiplier(TimePoint start, Duration duration, double multiplier) {
  // !(x > 0) rather than x <= 0 so NaN is rejected too.
  if (!(multiplier > 0.0) || !std::isfinite(multiplier)) {
    throw std::invalid_argument("FaultInjector: PER multiplier not in (0, inf)");
  }
  track_window(WindowKind::kPerMultiplier, kGlobalTarget, start, duration);
  window(
      start, duration,
      [this, multiplier] { medium_.set_per_multiplier(medium_.per_multiplier() * multiplier); },
      [this, multiplier] {
        medium_.set_per_multiplier(medium_.per_multiplier() / multiplier);
      });
}

void FaultInjector::per_floor(TimePoint start, Duration duration, double p) {
  // !(0 <= p < 1) rejects NaN alongside out-of-range values.
  if (!(p >= 0.0 && p < 1.0)) {
    throw std::invalid_argument("FaultInjector: PER floor not in [0,1)");
  }
  track_window(WindowKind::kPerFloor, kGlobalTarget, start, duration);
  // Stack as independent erasure processes so nested windows compose and
  // unwind exactly: survival probabilities multiply/divide.
  window(
      start, duration,
      [this, p] { medium_.set_loss_floor(1.0 - (1.0 - medium_.loss_floor()) * (1.0 - p)); },
      [this, p] { medium_.set_loss_floor(1.0 - (1.0 - medium_.loss_floor()) / (1.0 - p)); });
}

void FaultInjector::per_floor(TimePoint start, Duration duration, double p, NodeId node) {
  if (!(p >= 0.0 && p < 1.0)) {
    throw std::invalid_argument("FaultInjector: PER floor not in [0,1)");
  }
  track_window(WindowKind::kPerFloor, node, start, duration);
  window(
      start, duration,
      [this, p, node] {
        medium_.set_node_loss_floor(
            node, 1.0 - (1.0 - medium_.node_loss_floor(node)) * (1.0 - p));
      },
      [this, p, node] {
        medium_.set_node_loss_floor(
            node, 1.0 - (1.0 - medium_.node_loss_floor(node)) / (1.0 - p));
      });
}

NodeId FaultInjector::jammer(TimePoint start, Duration duration, JammerConfig config) {
  jammers_.push_back(
      std::make_unique<Jammer>(scheduler_, medium_, config, stats_, rng_.fork()));
  Jammer* j = jammers_.back().get();
  track_window(WindowKind::kJammer, kGlobalTarget, start, duration);
  window(start, duration, [j] { j->activate(); }, [j] { j->deactivate(); });
  return j->node_id();
}

void FaultInjector::radio_deaf(TimePoint start, Duration duration, NodeId node) {
  track_window(WindowKind::kRadioDeaf, node, start, duration);
  window(start, duration, [this, node] { medium_.set_rx_blocked(node, true); },
         [this, node] { medium_.set_rx_blocked(node, false); });
}

void FaultInjector::attach_energy_target(EnergyFaultTarget* target) {
  if (target == nullptr) throw std::invalid_argument("FaultInjector: null energy target");
  energy_targets_.push_back(target);
}

void FaultInjector::brown_out(TimePoint when, EnergyFaultTarget& target) {
  at(when, [this, &target] {
    ++stats_.brown_outs_injected;
    target.fault_brown_out();
  });
}

void FaultInjector::brown_out_all(TimePoint when) {
  // Targets are iterated at fire time, in registration order, so devices
  // attached after scheduling are still hit.
  at(when, [this] {
    for (EnergyFaultTarget* t : energy_targets_) {
      ++stats_.brown_outs_injected;
      t->fault_brown_out();
    }
  });
}

void FaultInjector::harvest_fade(TimePoint start, Duration duration, double scale) {
  if (!(scale >= 0.0) || !std::isfinite(scale)) {
    throw std::invalid_argument("FaultInjector: fade scale not in [0, inf)");
  }
  track_window(WindowKind::kHarvestFade, kGlobalTarget, start, duration);
  window(
      start, duration,
      [this, scale] {
        ++stats_.harvest_fades;
        for (EnergyFaultTarget* t : energy_targets_) t->fault_harvest_push(scale);
      },
      [this, scale] {
        for (EnergyFaultTarget* t : energy_targets_) t->fault_harvest_pop(scale);
      });
}

void FaultInjector::harvest_fade(TimePoint start, Duration duration, double scale,
                                 EnergyFaultTarget& target) {
  if (!(scale >= 0.0) || !std::isfinite(scale)) {
    throw std::invalid_argument("FaultInjector: fade scale not in [0, inf)");
  }
  // Track by registration index when the target is attached, so two
  // fades on the same device warn but fades on different devices don't.
  // Pointer identity would work within a run but keys must be stable.
  const auto it = std::find(energy_targets_.begin(), energy_targets_.end(), &target);
  if (it != energy_targets_.end()) {
    track_window(WindowKind::kHarvestFade,
                 static_cast<std::uint32_t>(it - energy_targets_.begin()), start,
                 duration);
  }
  window(
      start, duration,
      [this, scale, &target] {
        ++stats_.harvest_fades;
        target.fault_harvest_push(scale);
      },
      [scale, &target] { target.fault_harvest_pop(scale); });
}

void FaultInjector::rf_drought(TimePoint start, Duration duration) {
  harvest_fade(start, duration, 0.0);
}

void FaultInjector::publish_metrics(telemetry::MetricsRegistry& registry,
                                    const std::string& prefix) const {
  registry.bind_counter(prefix + ".windows_scheduled", &stats_.windows_scheduled);
  registry.bind_counter(prefix + ".windows_started", &stats_.windows_started);
  registry.bind_counter(prefix + ".windows_ended", &stats_.windows_ended);
  registry.bind_counter(prefix + ".windows_active", &stats_.fault_windows_active);
  registry.bind_counter(prefix + ".events_fired", &stats_.events_fired);
  registry.bind_counter(prefix + ".jammer_bursts", &stats_.jammer_bursts);
  registry.bind_counter(prefix + ".brown_outs_injected", &stats_.brown_outs_injected);
  registry.bind_counter(prefix + ".harvest_fades", &stats_.harvest_fades);
  registry.bind_counter(prefix + ".windows_overlapping", &stats_.windows_overlapping);
}

}  // namespace wile::sim
