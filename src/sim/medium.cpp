#include "sim/medium.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wile::sim {

double distance_m(const Position& a, const Position& b) {
  const double dx = a.x_m - b.x_m;
  const double dy = a.y_m - b.y_m;
  return std::sqrt(dx * dx + dy * dy);
}

NodeId Medium::attach(MediumClient* client, Position position) {
  if (client == nullptr) throw std::invalid_argument("Medium::attach: null client");
  nodes_.push_back(NodeEntry{client, position, false});
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Medium::set_position(NodeId id, Position position) {
  nodes_.at(id).position = position;
}

Position Medium::position(NodeId id) const { return nodes_.at(id).position; }

double Medium::rx_power_at(const ActiveTx& tx, NodeId listener) const {
  const double d = distance_m(nodes_[tx.transmitter].position, nodes_[listener].position);
  return channel_.rx_power_dbm(tx.tx_power_dbm, d);
}

bool Medium::carrier_busy(NodeId listener) const {
  if (nodes_.at(listener).transmitting) return true;
  for (const auto& tx : active_) {
    if (tx.transmitter == listener) continue;
    if (rx_power_at(tx, listener) >= kCarrierSenseDbm) return true;
  }
  return false;
}

bool Medium::transmitting(NodeId id) const { return nodes_.at(id).transmitting; }

void Medium::set_rx_blocked(NodeId id, bool blocked) { nodes_.at(id).rx_blocked = blocked; }

bool Medium::rx_blocked(NodeId id) const { return nodes_.at(id).rx_blocked; }

void Medium::transmit(NodeId transmitter, TxRequest request) {
  NodeEntry& node = nodes_.at(transmitter);
  if (node.transmitting) {
    throw std::logic_error("Medium::transmit: node already transmitting");
  }
  node.transmitting = true;
  ++stats_.transmissions;

  ActiveTx tx;
  tx.transmitter = transmitter;
  tx.start = scheduler_.now();
  tx.end = scheduler_.now() + request.airtime;
  tx.tx_power_dbm = request.tx_power_dbm;

  // Record mutual interference with everything already in the air.
  // Receiver-side audibility is judged at delivery time.
  for (auto& other : active_) {
    other.interferers.push_back({transmitter, request.tx_power_dbm});
    tx.interferers.push_back({other.transmitter, other.tx_power_dbm});
  }
  tx.id = next_tx_id_++;
  active_.push_back(tx);

  const std::uint64_t tx_id = tx.id;
  const TimePoint started = tx.start;
  scheduler_.schedule_at(tx.end, [this, transmitter, tx_id, started,
                                  request = std::move(request)]() mutable {
    // Locate and remove our active entry (keeping a copy for delivery).
    ActiveTx done;
    bool found = false;
    for (std::size_t i = 0; i < active_.size(); ++i) {
      if (active_[i].id == tx_id) {
        done = active_[i];
        active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(i));
        found = true;
        break;
      }
    }
    if (!found) throw std::logic_error("Medium: active transmission vanished");
    nodes_.at(transmitter).transmitting = false;

    // The transmitter's completion runs before receiver delivery: the
    // radio returns to RX at the end of its own airtime, and responses
    // (ACKs) can only arrive afterwards.
    if (request.on_complete) request.on_complete();
    deliver(done, request, started);
  });
}

void Medium::deliver(const ActiveTx& tx, const TxRequest& request, TimePoint /*started*/) {
  for (NodeId receiver = 0; receiver < nodes_.size(); ++receiver) {
    if (receiver == tx.transmitter) continue;
    NodeEntry& node = nodes_[receiver];
    if (node.rx_blocked) continue;  // injected radio deafness
    if (!node.client->rx_enabled()) continue;

    const double rx_power = rx_power_at(tx, receiver);
    if (rx_power < kCarrierSenseDbm) continue;  // below detection: silence

    RxFrame frame;
    frame.transmitter = tx.transmitter;
    frame.mpdu = request.mpdu;
    frame.rx_power_dbm = rx_power;
    frame.snr_db = rx_power - channel_.config().noise_floor_dbm - noise_offset_db_;
    frame.airtime = request.airtime;
    frame.rate = request.rate;

    // Collision: any overlapping transmission audible at this receiver.
    bool collided = false;
    for (const auto& intf : tx.interferers) {
      if (intf.transmitter == receiver) {
        collided = true;  // receiver was itself transmitting during overlap
        break;
      }
      const double d =
          distance_m(nodes_[intf.transmitter].position, nodes_[receiver].position);
      if (channel_.rx_power_dbm(intf.tx_power_dbm, d) >= kCarrierSenseDbm) {
        collided = true;
        break;
      }
    }
    if (collided) {
      ++stats_.collision_losses;
      node.client->on_corrupt_frame(frame, /*collision=*/true);
      continue;
    }

    // Channel error.
    double per = request.rate
                     ? channel_.packet_error_rate(frame.snr_db, *request.rate,
                                                  request.mpdu.size())
                     : channel_.ble_packet_error_rate(frame.snr_db, request.mpdu.size());
    per = std::min(1.0, per * per_multiplier_);
    // Independent erasure floor: lose at least `loss_floor_` of frames
    // regardless of SNR (union of the two independent loss processes).
    per = loss_floor_ + (1.0 - loss_floor_) * per;
    if (rng_.chance(per)) {
      ++stats_.channel_losses;
      node.client->on_corrupt_frame(frame, /*collision=*/false);
      continue;
    }

    ++stats_.deliveries;
    node.client->on_frame(frame);
  }
}

}  // namespace wile::sim
