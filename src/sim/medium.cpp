#include "sim/medium.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace wile::sim {

double distance_m(const Position& a, const Position& b) {
  const double dx = a.x_m - b.x_m;
  const double dy = a.y_m - b.y_m;
  return std::sqrt(dx * dx + dy * dy);
}

Medium::Medium(Scheduler& scheduler, phy::Channel channel, Rng rng)
    : scheduler_(scheduler), channel_(channel), rng_(rng) {
  // One cell per 0 dBm audible radius: a delivery query for a typical
  // transmission touches at most a 3x3 block of cells.
  cell_size_m_ =
      std::clamp(channel_.max_audible_range_m(0.0, kCarrierSenseDbm), 1.0, 500.0);
}

std::int32_t Medium::cell_coord(double meters) const {
  return static_cast<std::int32_t>(std::floor(meters / cell_size_m_));
}

std::uint64_t Medium::cell_key(std::int32_t cx, std::int32_t cy) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
         static_cast<std::uint32_t>(cy);
}

void Medium::grid_insert(NodeId id, const Position& pos) {
  cells_[cell_key(cell_coord(pos.x_m), cell_coord(pos.y_m))].push_back(id);
}

void Medium::grid_remove(NodeId id, const Position& pos) {
  auto it = cells_.find(cell_key(cell_coord(pos.x_m), cell_coord(pos.y_m)));
  if (it == cells_.end()) return;
  auto& bucket = it->second;
  auto pos_it = std::find(bucket.begin(), bucket.end(), id);
  if (pos_it != bucket.end()) {
    *pos_it = bucket.back();
    bucket.pop_back();
  }
}

void Medium::collect_in_range(const Position& center, double range_m,
                              std::vector<NodeId>& out) const {
  const std::int32_t cx0 = cell_coord(center.x_m - range_m);
  const std::int32_t cx1 = cell_coord(center.x_m + range_m);
  const std::int32_t cy0 = cell_coord(center.y_m - range_m);
  const std::int32_t cy1 = cell_coord(center.y_m + range_m);
  for (std::int32_t cx = cx0; cx <= cx1; ++cx) {
    for (std::int32_t cy = cy0; cy <= cy1; ++cy) {
      auto it = cells_.find(cell_key(cx, cy));
      if (it == cells_.end()) continue;
      out.insert(out.end(), it->second.begin(), it->second.end());
    }
  }
}

NodeId Medium::attach(MediumClient* client, Position position) {
  if (client == nullptr) throw std::invalid_argument("Medium::attach: null client");
  nodes_.push_back(NodeEntry{client, position, false, false, 0});
  const auto id = static_cast<NodeId>(nodes_.size() - 1);
  grid_insert(id, position);
  return id;
}

void Medium::set_position(NodeId id, Position position) {
  NodeEntry& node = nodes_.at(id);
  grid_remove(id, node.position);
  node.position = position;
  ++node.position_epoch;  // cached path losses involving this node go stale
  grid_insert(id, position);
}

Position Medium::position(NodeId id) const { return nodes_.at(id).position; }

double Medium::path_loss_db(NodeId a, NodeId b) const {
  const NodeId lo = std::min(a, b);
  const NodeId hi = std::max(a, b);
  const std::uint64_t key = (static_cast<std::uint64_t>(lo) << 32) | hi;
  const std::uint32_t ea = nodes_[lo].position_epoch;
  const std::uint32_t eb = nodes_[hi].position_epoch;
  auto it = path_loss_cache_.find(key);
  if (it != path_loss_cache_.end() && it->second.epoch_a == ea &&
      it->second.epoch_b == eb) {
    return it->second.loss_db;
  }
  // Same expression as Channel::rx_power_dbm's loss term, so cached and
  // uncached paths produce bit-identical powers.
  const double loss =
      channel_.rx_power_dbm(0.0, distance_m(nodes_[lo].position, nodes_[hi].position));
  if (path_loss_cache_.size() >= kMaxPathLossEntries) path_loss_cache_.clear();
  path_loss_cache_[key] = PathLossEntry{loss, ea, eb};
  return loss;
}

double Medium::rx_power_at(const ActiveTx& tx, NodeId listener) const {
  // path_loss_db returns rx power for a 0 dBm transmitter; shift by the
  // actual TX power (the model is linear in dB).
  return tx.tx_power_dbm + path_loss_db(tx.transmitter, listener);
}

double Medium::audible_range_m(double tx_power_dbm) const {
  // Slack absorbs floating-point disagreement between the analytic
  // inversion and the per-node power check; the exact >= threshold test
  // at delivery still decides audibility.
  return channel_.max_audible_range_m(tx_power_dbm, kCarrierSenseDbm) * 1.001 + 0.1;
}

bool Medium::carrier_busy(NodeId listener) const {
  const NodeEntry& me = nodes_.at(listener);
  if (me.transmitting) return true;
  for (const auto& tx : active_) {
    if (tx.transmitter == listener) continue;
    // Cheap pre-filter: beyond the audible radius the exact check below
    // cannot pass (the radius is computed with slack).
    if (distance_m(nodes_[tx.transmitter].position, me.position) > tx.audible_range_m) {
      continue;
    }
    if (rx_power_at(tx, listener) >= kCarrierSenseDbm) return true;
  }
  return false;
}

bool Medium::transmitting(NodeId id) const { return nodes_.at(id).transmitting; }

void Medium::set_rx_blocked(NodeId id, bool blocked) { nodes_.at(id).rx_blocked = blocked; }

bool Medium::rx_blocked(NodeId id) const { return nodes_.at(id).rx_blocked; }

void Medium::set_node_loss_floor(NodeId id, double p) {
  assert(std::isfinite(p) && "Medium::set_node_loss_floor: non-finite floor");
  nodes_.at(id).loss_floor = std::isfinite(p) ? std::clamp(p, 0.0, 1.0) : 0.0;
}

double Medium::node_loss_floor(NodeId id) const { return nodes_.at(id).loss_floor; }

void Medium::transmit(NodeId transmitter, TxRequest request) {
  NodeEntry& node = nodes_.at(transmitter);
  if (node.transmitting) {
    throw std::logic_error("Medium::transmit: node already transmitting");
  }
  node.transmitting = true;
  ++stats_.transmissions;

  ActiveTx tx;
  tx.id = next_tx_id_++;
  tx.transmitter = transmitter;
  tx.start = scheduler_.now();
  tx.end = tx.start + request.airtime;
  tx.tx_power_dbm = request.tx_power_dbm;
  tx.audible_range_m = audible_range_m(request.tx_power_dbm);
  tx.mpdu = FrameBuffer{std::move(request.mpdu)};  // one allocation per TX
  tx.airtime = request.airtime;
  tx.rate = request.rate;
  tx.on_complete = std::move(request.on_complete);

  // Record mutual interference with everything already in the air.
  // Receiver-side audibility is judged at delivery time.
  for (auto& other : active_) {
    other.interferers.push_back({transmitter, request.tx_power_dbm});
    tx.interferers.push_back({other.transmitter, other.tx_power_dbm});
  }

  const std::uint64_t tx_id = tx.id;
  const TimePoint end = tx.end;
  active_.push_back(std::move(tx));

  // {this, tx_id} fits the scheduler's inline storage: scheduling the
  // completion allocates nothing.
  scheduler_.schedule_at(end, [this, tx_id] { finish_transmission(tx_id); });
}

void Medium::finish_transmission(std::uint64_t tx_id) {
  // Locate our entry and remove it by swap-and-pop; the entry itself is
  // moved out, never copied (its interferer list can be long).
  std::size_t i = 0;
  while (i < active_.size() && active_[i].id != tx_id) ++i;
  if (i == active_.size()) {
    throw std::logic_error("Medium: active transmission vanished");
  }
  ActiveTx done = std::move(active_[i]);
  if (i + 1 != active_.size()) active_[i] = std::move(active_.back());
  active_.pop_back();
  nodes_.at(done.transmitter).transmitting = false;

  // The transmitter's completion runs before receiver delivery: the
  // radio returns to RX at the end of its own airtime, and responses
  // (ACKs) can only arrive afterwards.
  if (done.on_complete) done.on_complete();
  deliver(done);
}

void Medium::deliver(const ActiveTx& tx) {
  // Candidate receivers: with the grid, only nodes inside the audible
  // radius; sorted so RNG draws happen in the same ascending-NodeId
  // order as the dense scan (bit-for-bit equivalence between modes).
  std::vector<NodeId>& candidates = delivery_scratch_;
  candidates.clear();
  if (grid_enabled_) {
    collect_in_range(nodes_[tx.transmitter].position, tx.audible_range_m, candidates);
    std::sort(candidates.begin(), candidates.end());
  } else {
    candidates.resize(nodes_.size());
    std::iota(candidates.begin(), candidates.end(), NodeId{0});
  }

  RxFrame frame;
  frame.transmitter = tx.transmitter;
  frame.mpdu = tx.mpdu;  // refcount bump; zero payload copies per receiver
  frame.airtime = tx.airtime;
  frame.rate = tx.rate;

  for (const NodeId receiver : candidates) {
    if (receiver == tx.transmitter) continue;
    const NodeEntry& node = nodes_[receiver];
    if (node.rx_blocked) continue;  // injected radio deafness
    if (!node.client->rx_enabled()) continue;

    const double rx_power = rx_power_at(tx, receiver);
    if (rx_power < kCarrierSenseDbm) continue;  // below detection: silence

    frame.rx_power_dbm = rx_power;
    frame.snr_db = rx_power - channel_.config().noise_floor_dbm - noise_offset_db_;

    // Collision: any overlapping transmission audible at this receiver.
    bool collided = false;
    for (const auto& intf : tx.interferers) {
      if (intf.transmitter == receiver) {
        collided = true;  // receiver was itself transmitting during overlap
        break;
      }
      const double d =
          distance_m(nodes_[intf.transmitter].position, nodes_[receiver].position);
      if (channel_.rx_power_dbm(intf.tx_power_dbm, d) >= kCarrierSenseDbm) {
        collided = true;
        break;
      }
    }
    if (collided) {
      ++stats_.collision_losses;
      node.client->on_corrupt_frame(frame, /*collision=*/true);
      continue;
    }

    // Channel error.
    double per = tx.rate ? channel_.packet_error_rate(frame.snr_db, *tx.rate,
                                                      tx.mpdu.size())
                         : channel_.ble_packet_error_rate(frame.snr_db, tx.mpdu.size());
    per = std::min(1.0, per * per_multiplier_);
    // Independent erasure floor: lose at least `loss_floor_` of frames
    // regardless of SNR (union of the two independent loss processes).
    // The per-node floor stacks the same way, but only when set — the
    // composed expression is not bit-identical to the global-only one
    // at node.loss_floor == 0, and digest-pinned determinism tests
    // require the legacy path untouched.
    double floor = loss_floor_;
    if (node.loss_floor > 0.0) {
      floor = 1.0 - (1.0 - floor) * (1.0 - node.loss_floor);
    }
    per = floor + (1.0 - floor) * per;
    if (rng_.chance(per)) {
      ++stats_.channel_losses;
      node.client->on_corrupt_frame(frame, /*collision=*/false);
      continue;
    }

    ++stats_.deliveries;
    node.client->on_frame(frame);
  }
}

void Medium::publish_metrics(telemetry::MetricsRegistry& registry,
                             const std::string& prefix) const {
  registry.bind_counter(prefix + ".transmissions", &stats_.transmissions);
  registry.bind_counter(prefix + ".deliveries", &stats_.deliveries);
  registry.bind_counter(prefix + ".collision_losses", &stats_.collision_losses);
  registry.bind_counter(prefix + ".channel_losses", &stats_.channel_losses);
  registry.bind_counter_fn(prefix + ".nodes",
                           [this] { return static_cast<std::uint64_t>(nodes_.size()); });
  registry.bind_gauge(prefix + ".noise_offset_db", &noise_offset_db_);
  registry.bind_gauge(prefix + ".per_multiplier", &per_multiplier_);
  registry.bind_gauge(prefix + ".loss_floor", &loss_floor_);
}

}  // namespace wile::sim
