#include "sim/medium.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace wile::sim {

double distance_m(const Position& a, const Position& b) {
  const double dx = a.x_m - b.x_m;
  const double dy = a.y_m - b.y_m;
  return std::sqrt(dx * dx + dy * dy);
}

Medium::Medium(Scheduler& scheduler, phy::Channel channel, Rng rng)
    : scheduler_(scheduler), channel_(channel), rng_(rng) {
  // One cell per 0 dBm audible radius: a delivery query for a typical
  // transmission touches at most a 3x3 block of cells.
  cell_size_m_ =
      std::clamp(channel_.max_audible_range_m(0.0, kCarrierSenseDbm), 1.0, 500.0);
}

std::int32_t Medium::cell_coord(double meters) const {
  return static_cast<std::int32_t>(std::floor(meters / cell_size_m_));
}

std::uint64_t Medium::cell_key(std::int32_t cx, std::int32_t cy) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
         static_cast<std::uint32_t>(cy);
}

void Medium::grid_insert(NodeId id, const Position& pos) {
  cells_[cell_key(cell_coord(pos.x_m), cell_coord(pos.y_m))].push_back(id);
}

void Medium::grid_remove(NodeId id, const Position& pos) {
  auto it = cells_.find(cell_key(cell_coord(pos.x_m), cell_coord(pos.y_m)));
  if (it == cells_.end()) return;
  auto& bucket = it->second;
  auto pos_it = std::find(bucket.begin(), bucket.end(), id);
  if (pos_it != bucket.end()) {
    *pos_it = bucket.back();
    bucket.pop_back();
  }
}

void Medium::collect_in_range(const Position& center, double range_m,
                              std::vector<NodeId>& out) const {
  const std::int32_t cx0 = cell_coord(center.x_m - range_m);
  const std::int32_t cx1 = cell_coord(center.x_m + range_m);
  const std::int32_t cy0 = cell_coord(center.y_m - range_m);
  const std::int32_t cy1 = cell_coord(center.y_m + range_m);
  for (std::int32_t cx = cx0; cx <= cx1; ++cx) {
    for (std::int32_t cy = cy0; cy <= cy1; ++cy) {
      auto it = cells_.find(cell_key(cx, cy));
      if (it == cells_.end()) continue;
      out.insert(out.end(), it->second.begin(), it->second.end());
    }
  }
}

NodeId Medium::attach(MediumClient* client, Position position) {
  if (client == nullptr) throw std::invalid_argument("Medium::attach: null client");
  clients_.push_back(client);
  pos_x_.push_back(position.x_m);
  pos_y_.push_back(position.y_m);
  position_epochs_.push_back(0);
  node_flags_.push_back(0);
  const auto id = static_cast<NodeId>(clients_.size() - 1);
  grid_insert(id, position);
  return id;
}

void Medium::set_position(NodeId id, Position position) {
  check_id(id);
  grid_remove(id, node_position(id));
  pos_x_[id] = position.x_m;
  pos_y_[id] = position.y_m;
  ++position_epochs_[id];  // cached path losses involving this node go stale
  grid_insert(id, position);
}

Position Medium::position(NodeId id) const {
  check_id(id);
  return node_position(id);
}

void Medium::path_loss_store(std::uint64_t key, double loss, std::uint32_t ea,
                             std::uint32_t eb) const {
  if (path_loss_slots_.empty()) {
    path_loss_slots_.resize(kInitialPathLossSlots);
  } else if ((path_loss_used_ + 1) * 2 > path_loss_slots_.size()) {
    // Keep load factor <= 1/2. Double up to the cap; past it, start over
    // (the seed's unordered_map cleared wholesale at its cap too).
    if (path_loss_slots_.size() >= kMaxPathLossSlots) {
      std::fill(path_loss_slots_.begin(), path_loss_slots_.end(), PathLossSlot{});
      path_loss_used_ = 0;
    } else {
      std::vector<PathLossSlot> old(path_loss_slots_.size() * 2);
      old.swap(path_loss_slots_);
      path_loss_used_ = 0;
      for (const PathLossSlot& s : old) {
        if (s.key != kEmptySlotKey) {
          path_loss_store(s.key, s.loss_db, s.epoch_a, s.epoch_b);
        }
      }
    }
  }
  // Fibonacci-style multiplicative hash; the high bits carry the mix.
  const std::size_t mask = path_loss_slots_.size() - 1;
  std::uint64_t h = key * 0x9E3779B97F4A7C15ull;
  h ^= h >> 32;
  std::size_t i = static_cast<std::size_t>(h) & mask;
  while (path_loss_slots_[i].key != kEmptySlotKey && path_loss_slots_[i].key != key) {
    i = (i + 1) & mask;
  }
  if (path_loss_slots_[i].key == kEmptySlotKey) ++path_loss_used_;
  path_loss_slots_[i] = PathLossSlot{key, loss, ea, eb};
}

double Medium::path_loss_db(NodeId a, NodeId b) const {
  const NodeId lo = std::min(a, b);
  const NodeId hi = std::max(a, b);
  const std::uint64_t key = (static_cast<std::uint64_t>(lo) << 32) | hi;
  const std::uint32_t ea = position_epochs_[lo];
  const std::uint32_t eb = position_epochs_[hi];
  if (!path_loss_slots_.empty()) {
    const std::size_t mask = path_loss_slots_.size() - 1;
    std::uint64_t h = key * 0x9E3779B97F4A7C15ull;
    h ^= h >> 32;
    std::size_t i = static_cast<std::size_t>(h) & mask;
    while (path_loss_slots_[i].key != kEmptySlotKey) {
      const PathLossSlot& s = path_loss_slots_[i];
      if (s.key == key) {
        if (s.epoch_a == ea && s.epoch_b == eb) return s.loss_db;
        break;  // stale entry: recompute and overwrite below
      }
      i = (i + 1) & mask;
    }
  }
  // Same expression as Channel::rx_power_dbm's loss term, so cached and
  // uncached paths produce bit-identical powers.
  const double loss =
      channel_.rx_power_dbm(0.0, distance_m(node_position(lo), node_position(hi)));
  path_loss_store(key, loss, ea, eb);
  return loss;
}

double Medium::rx_power_at(const ActiveTx& tx, NodeId listener) const {
  if (tx.remote) {
    // Phantom: the origin node is not attached here, so compute from the
    // snapshot directly (no per-pair cache entry to key it by). The model
    // is the same expression the cache stores, shifted by TX power.
    return channel_.rx_power_dbm(tx.tx_power_dbm,
                                 distance_m(tx.origin, node_position(listener)));
  }
  // path_loss_db returns rx power for a 0 dBm transmitter; shift by the
  // actual TX power (the model is linear in dB).
  return tx.tx_power_dbm + path_loss_db(tx.transmitter, listener);
}

double Medium::audible_range_m(double tx_power_dbm) const {
  // Slack absorbs floating-point disagreement between the analytic
  // inversion and the per-node power check; the exact >= threshold test
  // at delivery still decides audibility.
  return channel_.max_audible_range_m(tx_power_dbm, kCarrierSenseDbm) * 1.001 + 0.1;
}

bool Medium::carrier_busy(NodeId listener) const {
  check_id(listener);
  if (node_flags_[listener] & kFlagTransmitting) return true;
  const Position me = node_position(listener);
  for (const auto& tx : active_) {
    if (!tx.remote && tx.transmitter == listener) continue;
    // Cheap pre-filter: beyond the audible radius the exact check below
    // cannot pass (the radius is computed with slack).
    if (distance_m(tx_origin(tx), me) > tx.audible_range_m) continue;
    if (rx_power_at(tx, listener) >= kCarrierSenseDbm) return true;
  }
  return false;
}

bool Medium::transmitting(NodeId id) const {
  check_id(id);
  return (node_flags_[id] & kFlagTransmitting) != 0;
}

void Medium::set_rx_blocked(NodeId id, bool blocked) {
  check_id(id);
  if (blocked) {
    node_flags_[id] |= kFlagRxBlocked;
  } else {
    node_flags_[id] &= static_cast<std::uint8_t>(~kFlagRxBlocked);
  }
}

bool Medium::rx_blocked(NodeId id) const {
  check_id(id);
  return (node_flags_[id] & kFlagRxBlocked) != 0;
}

void Medium::set_node_loss_floor(NodeId id, double p) {
  check_id(id);
  assert(std::isfinite(p) && "Medium::set_node_loss_floor: non-finite floor");
  const double clamped = std::isfinite(p) ? std::clamp(p, 0.0, 1.0) : 0.0;
  if (clamped > 0.0) {
    node_loss_floors_[id] = clamped;
  } else {
    node_loss_floors_.erase(id);  // keep the map empty-checkable on the hot path
  }
}

double Medium::node_loss_floor(NodeId id) const {
  check_id(id);
  auto it = node_loss_floors_.find(id);
  return it == node_loss_floors_.end() ? 0.0 : it->second;
}

void Medium::transmit(NodeId transmitter, TxRequest request) {
  check_id(transmitter);
  if (node_flags_[transmitter] & kFlagTransmitting) {
    throw std::logic_error("Medium::transmit: node already transmitting");
  }
  node_flags_[transmitter] |= kFlagTransmitting;
  ++stats_.transmissions;

  ActiveTx tx;
  tx.id = next_tx_id_++;
  tx.transmitter = transmitter;
  tx.start = scheduler_.now();
  tx.end = tx.start + request.airtime;
  tx.tx_power_dbm = request.tx_power_dbm;
  tx.audible_range_m = audible_range_m(request.tx_power_dbm);
  tx.origin = node_position(transmitter);
  tx.mpdu = FrameBuffer{std::move(request.mpdu)};  // one allocation per TX
  tx.airtime = request.airtime;
  tx.rate = request.rate;
  tx.on_complete = std::move(request.on_complete);

  // Record mutual interference with everything already in the air.
  // Receiver-side audibility is judged at delivery time. Remote entries
  // propagate their position snapshot; local ones resolve live.
  for (auto& other : active_) {
    other.interferers.push_back({transmitter, request.tx_power_dbm, false, tx.origin});
    tx.interferers.push_back(
        {other.transmitter, other.tx_power_dbm, other.remote, other.origin});
  }

  // Boundary detection for the sharded engine: if the audible circle
  // pokes outside this shard's owned x-span, neighbors must mirror it.
  if (span_set_ && boundary_hook_ &&
      (tx.origin.x_m - tx.audible_range_m < span_x0_m_ ||
       tx.origin.x_m + tx.audible_range_m >= span_x1_m_)) {
    RemoteTx rtx;
    rtx.origin_node = transmitter;
    rtx.origin = tx.origin;
    rtx.start = tx.start;
    rtx.end = tx.end;
    rtx.tx_power_dbm = tx.tx_power_dbm;
    rtx.audible_range_m = tx.audible_range_m;
    rtx.mpdu = tx.mpdu;  // refcount bump; bytes shared across shards
    rtx.airtime = tx.airtime;
    rtx.rate = tx.rate;
    boundary_hook_(rtx);
  }

  const std::uint64_t tx_id = tx.id;
  const TimePoint end = tx.end;
  active_.push_back(std::move(tx));

  // {this, tx_id} fits the scheduler's inline storage: scheduling the
  // completion allocates nothing.
  scheduler_.schedule_at(end, [this, tx_id] { finish_transmission(tx_id); });
}

void Medium::inject_remote(const RemoteTx& rtx) {
  ActiveTx tx;
  tx.id = next_tx_id_++;
  tx.transmitter = rtx.origin_node;
  tx.remote = true;
  tx.origin = rtx.origin;
  tx.start = rtx.start;
  tx.end = rtx.end;
  tx.tx_power_dbm = rtx.tx_power_dbm;
  tx.audible_range_m = rtx.audible_range_m;
  tx.mpdu = rtx.mpdu;
  tx.airtime = rtx.airtime;
  tx.rate = rtx.rate;

  for (auto& other : active_) {
    other.interferers.push_back({tx.transmitter, tx.tx_power_dbm, true, tx.origin});
    tx.interferers.push_back(
        {other.transmitter, other.tx_power_dbm, other.remote, other.origin});
  }

  const std::uint64_t tx_id = tx.id;
  // The frame may have ended before the barrier shipped it; deliver at
  // injection time then (never schedule into the past).
  const TimePoint fire = std::max(tx.end, scheduler_.now());
  active_.push_back(std::move(tx));
  scheduler_.schedule_at(fire, [this, tx_id] { finish_transmission(tx_id); });
}

void Medium::finish_transmission(std::uint64_t tx_id) {
  // Locate our entry and remove it by swap-and-pop; the entry itself is
  // moved out, never copied (its interferer list can be long).
  std::size_t i = 0;
  while (i < active_.size() && active_[i].id != tx_id) ++i;
  if (i == active_.size()) {
    throw std::logic_error("Medium: active transmission vanished");
  }
  ActiveTx done = std::move(active_[i]);
  if (i + 1 != active_.size()) active_[i] = std::move(active_.back());
  active_.pop_back();
  if (!done.remote) {
    node_flags_[done.transmitter] &= static_cast<std::uint8_t>(~kFlagTransmitting);
  }

  // The transmitter's completion runs before receiver delivery: the
  // radio returns to RX at the end of its own airtime, and responses
  // (ACKs) can only arrive afterwards. Phantoms have no local
  // transmitter, hence no completion.
  if (done.on_complete) done.on_complete();
  deliver(done);
}

void Medium::deliver(const ActiveTx& tx) {
  // Candidate receivers: with the grid, only nodes inside the audible
  // radius; sorted so RNG draws happen in the same ascending-NodeId
  // order as the dense scan (bit-for-bit equivalence between modes).
  std::vector<NodeId>& candidates = delivery_scratch_;
  candidates.clear();
  const Position origin = tx_origin(tx);
  if (grid_enabled_) {
    collect_in_range(origin, tx.audible_range_m, candidates);
    std::sort(candidates.begin(), candidates.end());
  } else {
    candidates.resize(clients_.size());
    std::iota(candidates.begin(), candidates.end(), NodeId{0});
  }

  RxFrame frame;
  frame.transmitter = tx.transmitter;
  frame.mpdu = tx.mpdu;  // refcount bump; zero payload copies per receiver
  frame.airtime = tx.airtime;
  frame.rate = tx.rate;

  const bool any_node_floor = !node_loss_floors_.empty();

  for (const NodeId receiver : candidates) {
    if (!tx.remote && receiver == tx.transmitter) continue;
    if (node_flags_[receiver] & kFlagRxBlocked) continue;  // injected deafness
    if (!clients_[receiver]->rx_enabled()) continue;

    const double rx_power = rx_power_at(tx, receiver);
    if (rx_power < kCarrierSenseDbm) continue;  // below detection: silence

    frame.rx_power_dbm = rx_power;
    frame.snr_db = rx_power - channel_.config().noise_floor_dbm - noise_offset_db_;

    // Collision: any overlapping transmission audible at this receiver.
    const Position rx_pos = node_position(receiver);
    bool collided = false;
    for (const auto& intf : tx.interferers) {
      if (!intf.remote && intf.transmitter == receiver) {
        collided = true;  // receiver was itself transmitting during overlap
        break;
      }
      const Position ip = intf.remote ? intf.origin : node_position(intf.transmitter);
      if (channel_.rx_power_dbm(intf.tx_power_dbm, distance_m(ip, rx_pos)) >=
          kCarrierSenseDbm) {
        collided = true;
        break;
      }
    }
    if (collided) {
      ++stats_.collision_losses;
      clients_[receiver]->on_corrupt_frame(frame, /*collision=*/true);
      continue;
    }

    // Channel error.
    double per = tx.rate ? channel_.packet_error_rate(frame.snr_db, *tx.rate,
                                                      tx.mpdu.size())
                         : channel_.ble_packet_error_rate(frame.snr_db, tx.mpdu.size());
    per = std::min(1.0, per * per_multiplier_);
    // Independent erasure floor: lose at least `loss_floor_` of frames
    // regardless of SNR (union of the two independent loss processes).
    // The per-node floor stacks the same way, but only when set — the
    // composed expression is not bit-identical to the global-only one
    // at a zero node floor, and digest-pinned determinism tests require
    // the legacy path untouched.
    double floor = loss_floor_;
    if (any_node_floor) {
      auto it = node_loss_floors_.find(receiver);
      if (it != node_loss_floors_.end() && it->second > 0.0) {
        floor = 1.0 - (1.0 - floor) * (1.0 - it->second);
      }
    }
    per = floor + (1.0 - floor) * per;
    if (rng_.chance(per)) {
      ++stats_.channel_losses;
      clients_[receiver]->on_corrupt_frame(frame, /*collision=*/false);
      continue;
    }

    ++stats_.deliveries;
    clients_[receiver]->on_frame(frame);
  }
}

void Medium::publish_metrics(telemetry::MetricsRegistry& registry,
                             const std::string& prefix) const {
  registry.bind_counter(prefix + ".transmissions", &stats_.transmissions);
  registry.bind_counter(prefix + ".deliveries", &stats_.deliveries);
  registry.bind_counter(prefix + ".collision_losses", &stats_.collision_losses);
  registry.bind_counter(prefix + ".channel_losses", &stats_.channel_losses);
  registry.bind_counter_fn(prefix + ".nodes", [this] {
    return static_cast<std::uint64_t>(clients_.size());
  });
  registry.bind_gauge(prefix + ".noise_offset_db", &noise_offset_db_);
  registry.bind_gauge(prefix + ".per_multiplier", &per_multiplier_);
  registry.bind_gauge(prefix + ".loss_floor", &loss_floor_);
}

}  // namespace wile::sim
