// Background WiFi traffic generation.
//
// Wi-LE shares the 2.4 GHz band with ordinary WiFi networks; §4.1 argues
// it "does not interfere with the normal operation of WiFi networks".
// Testing that needs a controllable source of ordinary traffic: a
// unicast data-frame stream at a configurable offered load, driven
// through the same CSMA/CA machinery as everything else, and a sink that
// acknowledges like a real peer. Used by bench/ablate_coexistence and
// the loss tests.
#pragma once

#include <cstdint>
#include <memory>

#include "dot11/frame.hpp"
#include "sim/csma.hpp"
#include "sim/medium.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace wile::sim {

struct TrafficConfig {
  MacAddress source_mac = MacAddress::from_seed(0x7A1);
  MacAddress sink_mac = MacAddress::from_seed(0x7A2);
  std::size_t frame_bytes = 1500;  // MPDU payload size
  double frames_per_second = 200.0;
  phy::WifiRate rate = phy::WifiRate::Mcs7;
  double tx_power_dbm = 20.0;
  /// Protect data frames with an RTS/CTS handshake (hidden terminals).
  bool use_rts = false;
};

/// Acknowledges every good unicast frame addressed to it and counts
/// deliveries — the AP side of a download, or a file-server peer.
class TrafficSink : public MediumClient {
 public:
  TrafficSink(Scheduler& scheduler, Medium& medium, Position position, MacAddress mac);

  [[nodiscard]] std::uint64_t frames_received() const { return received_; }
  [[nodiscard]] std::uint64_t bytes_received() const { return bytes_; }
  [[nodiscard]] MacAddress mac() const { return mac_; }

  void on_frame(const RxFrame& frame) override;
  [[nodiscard]] bool rx_enabled() const override;

 private:
  Scheduler& scheduler_;
  Medium& medium_;
  MacAddress mac_;
  NodeId node_id_{};
  std::uint64_t received_ = 0;
  std::uint64_t bytes_ = 0;
};

/// Offers `frames_per_second` data frames through CSMA. Under contention
/// the queue drains slower than the offered rate — exactly how a real
/// saturated station behaves.
class TrafficSource : public MediumClient {
 public:
  TrafficSource(Scheduler& scheduler, Medium& medium, Position position,
                TrafficConfig config, Rng rng);

  void start();
  void stop();

  [[nodiscard]] std::uint64_t frames_offered() const { return offered_; }
  [[nodiscard]] std::uint64_t frames_delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t frames_failed() const { return failed_; }

  void on_frame(const RxFrame& frame) override;
  [[nodiscard]] bool rx_enabled() const override;

 private:
  void schedule_next();
  void offer_frame();

  Scheduler& scheduler_;
  Medium& medium_;
  TrafficConfig config_;
  Rng rng_;
  NodeId node_id_{};
  std::unique_ptr<Csma> csma_;
  bool running_ = false;
  std::uint16_t seq_ = 0;
  std::uint64_t offered_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t failed_ = 0;
};

}  // namespace wile::sim
