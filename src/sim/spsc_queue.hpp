// Lock-free single-producer / single-consumer queue, used as the
// cross-shard mailbox in the parallel engine (sim/parallel.hpp).
//
// Shape: a linked chain of fixed-capacity ring segments (Lamport ring
// per segment, new segment appended when the current one fills). The
// common case — boundary traffic fits one segment — is wait-free with
// two atomic ops per push/pop and zero allocation; the overflow case
// allocates a segment on the producer side instead of spinning, which
// matters here because the consumer only drains at window barriers: a
// bounded ring whose producer spins on full would deadlock the barrier
// (producer can't arrive, consumer won't drain until it does).
//
// Memory ordering: the producer publishes a slot with a release store
// of `tail`; the consumer acquires `tail` before reading the slot. The
// segment link is published the same way (release `next`, acquire on
// follow). `head` is consumer-private, `tail`'s index is producer-
// private — neither thread ever writes the other's cursor, which is
// what makes the queue SPSC rather than MPMC.
//
// The parallel engine additionally separates push (window k) and pop
// (window k+1) with a barrier, so in practice the atomics are belt and
// braces — but the queue is correct under genuine concurrency, and the
// threaded stress test in tests/test_parallel exercises it that way.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace wile::sim {

template <typename T>
class SpscQueue {
 public:
  /// `segment_capacity` must be a power of two (slots per ring segment).
  explicit SpscQueue(std::size_t segment_capacity = 1024)
      : capacity_(segment_capacity) {
    head_seg_ = tail_seg_ = new Segment(capacity_);
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  ~SpscQueue() {
    Segment* s = head_seg_;
    while (s != nullptr) {
      Segment* next = s->next.load(std::memory_order_relaxed);
      delete s;
      s = next;
    }
  }

  /// Producer side only. Never blocks; appends a fresh segment when the
  /// current one is full.
  void push(T value) {
    Segment* seg = tail_seg_;
    const std::size_t t = seg->tail.load(std::memory_order_relaxed);
    if (t - seg->head_cache == capacity_) {
      // Ring full from the producer's view; refresh the consumer cursor
      // once before giving up on this segment (cheap vs. allocating).
      seg->head_cache = seg->consumed.load(std::memory_order_acquire);
      if (t - seg->head_cache == capacity_) {
        auto* fresh = new Segment(capacity_);
        segments_.fetch_add(1, std::memory_order_relaxed);
        seg->next.store(fresh, std::memory_order_release);
        tail_seg_ = seg = fresh;
      }
    }
    const std::size_t slot_tail = seg->tail.load(std::memory_order_relaxed);
    seg->slots[slot_tail & (capacity_ - 1)] = std::move(value);
    seg->tail.store(slot_tail + 1, std::memory_order_release);
    pushed_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Consumer side only. Returns false when empty.
  bool try_pop(T& out) {
    Segment* seg = head_seg_;
    while (true) {
      const std::size_t t = seg->tail.load(std::memory_order_acquire);
      if (seg->head != t) {
        out = std::move(seg->slots[seg->head & (capacity_ - 1)]);
        ++seg->head;
        seg->consumed.store(seg->head, std::memory_order_release);
        popped_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      // Segment drained; follow the chain if the producer moved on.
      Segment* next = seg->next.load(std::memory_order_acquire);
      if (next == nullptr) return false;
      head_seg_ = next;
      delete seg;  // producer abandoned it before publishing `next`
      seg = next;
    }
  }

  /// Consumer-side convenience: append everything currently visible.
  std::size_t drain_into(std::vector<T>& out) {
    std::size_t n = 0;
    T item;
    while (try_pop(item)) {
      out.push_back(std::move(item));
      ++n;
    }
    return n;
  }

  // Relaxed telemetry counters; exact once producer/consumer are
  // quiescent (the engine reads them after joining its workers).
  [[nodiscard]] std::uint64_t pushed() const {
    return pushed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t popped() const {
    return popped_.load(std::memory_order_relaxed);
  }
  /// Overflow segments allocated beyond the initial one.
  [[nodiscard]] std::uint64_t overflow_segments() const {
    return segments_.load(std::memory_order_relaxed);
  }

 private:
  struct Segment {
    explicit Segment(std::size_t cap) : slots(cap) {}
    std::vector<T> slots;
    std::atomic<std::size_t> tail{0};      // producer writes, consumer reads
    std::atomic<std::size_t> consumed{0};  // consumer writes, producer reads
    std::size_t head = 0;                  // consumer-private cursor
    std::size_t head_cache = 0;            // producer-private snapshot of consumed
    std::atomic<Segment*> next{nullptr};
  };

  const std::size_t capacity_;
  Segment* head_seg_;  // consumer-private
  Segment* tail_seg_;  // producer-private
  std::atomic<std::uint64_t> pushed_{0};
  std::atomic<std::uint64_t> popped_{0};
  std::atomic<std::uint64_t> segments_{0};
};

}  // namespace wile::sim
