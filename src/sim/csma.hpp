// CSMA/CA distributed coordination function (DCF), IEEE 802.11-2012 §9.3.
//
// One instance per transmitting radio. Handles DIFS deference, slotted
// binary-exponential backoff, transmission, ACK timeout and retry. The
// owner (STA/AP/Wi-LE node) feeds received ACKs back via notify_ack.
// Wi-LE broadcasts beacons with expect_ack=false — broadcast frames are
// never acknowledged, which is part of why a Wi-LE transmission is one
// frame instead of two.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>

#include "phy/airtime.hpp"
#include "sim/medium.hpp"
#include "sim/scheduler.hpp"
#include "util/mac_address.hpp"
#include "util/rng.hpp"

namespace wile::sim {

struct CsmaConfig {
  int retry_limit = phy::MacTiming::kRetryLimit;
  int cw_min = phy::MacTiming::kCwMin;
  int cw_max = phy::MacTiming::kCwMax;
  double tx_power_dbm = 0.0;
  phy::Band band = phy::Band::G2_4;
  /// MPDUs at least this long use RTS/CTS when the send() call provides
  /// the handshake addresses (hidden-terminal protection).
  std::size_t rts_threshold = SIZE_MAX;
};

/// Addresses for the RTS/CTS exchange preceding a protected send.
struct RtsAddresses {
  MacAddress receiver;     // the peer that will answer with CTS
  MacAddress transmitter;  // our own address (RTS TA)
};

class Csma {
 public:
  using Config = CsmaConfig;

  /// Outcome of one send() call.
  struct Result {
    bool success = false;
    int transmissions = 0;  // 1 = no retries
  };
  using DoneCallback = std::function<void(const Result&)>;

  Csma(Scheduler& scheduler, Medium& medium, NodeId self, Rng rng, Config config = {});

  /// Queue an MPDU for transmission. `expect_ack` enables the ACK-timeout
  /// retry loop (unicast); broadcast frames complete when they leave the
  /// antenna. Sends are serviced FIFO. When `rts` is provided and the
  /// MPDU reaches the configured rts_threshold, the transmission is
  /// protected by an RTS/CTS handshake.
  void send(Bytes mpdu, phy::WifiRate rate, bool expect_ack, DoneCallback done,
            std::optional<RtsAddresses> rts = std::nullopt);

  /// Queue a frame whose airtime does not follow the 802.11 rate table —
  /// the 802.11ba WUR PPDU's OOK body, whose duration the caller computes
  /// from phy::WurPhy. The frame contends exactly like any broadcast
  /// (DIFS + backoff, no ACK) and is put on the medium with no WiFi rate,
  /// so receivers apply the non-OFDM error model.
  void send_raw(Bytes mpdu, Duration airtime, DoneCallback done);

  /// The owner observed an ACK addressed to this station.
  void notify_ack();

  /// The owner observed a CTS addressed to this station.
  void notify_cts();

  /// Virtual carrier sense: the owner overheard a frame reserving the
  /// channel for `duration_us` (the 802.11 Duration/ID field). Values
  /// with bit 15 set are AIDs/CFP markers, not NAV, and are ignored.
  void observe_nav(std::uint16_t duration_us);

  /// Current NAV expiry (for tests).
  [[nodiscard]] TimePoint nav_until() const { return nav_until_; }

  /// Optional hook fired at the instant each (re)transmission starts,
  /// with its airtime and rate. Power models use it to overlay TX current.
  void set_tx_listener(std::function<void(Duration airtime, phy::WifiRate rate)> listener) {
    tx_listener_ = std::move(listener);
  }

  /// True when no send is queued or in flight.
  [[nodiscard]] bool idle() const { return !busy_ && queue_.empty(); }

  /// Discard every queued (not yet begun) send without invoking its
  /// callback. An in-flight transmission still completes — a crashing
  /// node's final frame leaves the antenna. Used by fault injection
  /// (AP outage) to silence a node instantly.
  void drop_queued() { queue_.clear(); }

 private:
  struct Pending {
    Bytes mpdu;
    phy::WifiRate rate{};
    bool expect_ack = false;
    DoneCallback done;
    std::optional<RtsAddresses> rts;
    /// Explicit airtime for non-802.11-rate waveforms (WUR OOK); when
    /// set the frame goes out with no WiFi rate attached.
    std::optional<Duration> raw_airtime;
    int transmissions = 0;
    int cw = 0;
  };

  [[nodiscard]] bool channel_busy() const;
  void start_next();
  void begin_access();
  void sense_difs(Duration observed_idle);
  void backoff_slot(int remaining_slots);
  void resume_after_busy(int remaining_slots);
  void transmit_now();
  void transmit_rts();
  void transmit_data();
  void on_tx_complete();
  void on_ack_timeout();
  void on_cts_timeout();
  void retry_or_fail();
  void finish(bool success);

  Scheduler& scheduler_;
  Medium& medium_;
  NodeId self_;
  Rng rng_;
  Config config_;

  std::deque<Pending> queue_;
  bool busy_ = false;
  std::optional<Pending> current_;
  std::optional<EventId> ack_timer_;
  bool awaiting_ack_ = false;
  std::optional<EventId> cts_timer_;
  bool awaiting_cts_ = false;
  std::function<void(Duration, phy::WifiRate)> tx_listener_;
  TimePoint nav_until_{};
};

}  // namespace wile::sim
