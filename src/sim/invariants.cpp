#include "sim/invariants.hpp"

#include <utility>

namespace wile::sim {
namespace {

std::string format_us(TimePoint at) {
  return std::to_string(at.us()) + "us";
}

}  // namespace

InvariantMonitor::~InvariantMonitor() { stop(); }

void InvariantMonitor::add_check(std::string name, Check check,
                                 std::uint64_t node) {
  checks_.push_back(Entry{std::move(name), std::move(check), node});
}

void InvariantMonitor::add_monotone_counter(std::string name,
                                            std::function<std::uint64_t()> fn,
                                            std::uint64_t node) {
  // last lives in the closure: each registered counter tracks its own
  // high-water mark across sweeps.
  add_check(
      std::move(name),
      [fn = std::move(fn), last = std::uint64_t{0}]() mutable
      -> std::optional<std::string> {
        const std::uint64_t v = fn();
        if (v < last) {
          std::string detail = "counter went backwards: " +
                               std::to_string(last) + " -> " +
                               std::to_string(v);
          last = v;
          return detail;
        }
        last = v;
        return std::nullopt;
      },
      node);
}

void InvariantMonitor::add_bounded_gauge(std::string name,
                                         std::function<double()> fn, double lo,
                                         double hi, std::uint64_t node) {
  add_check(
      std::move(name),
      [fn = std::move(fn), lo, hi]() -> std::optional<std::string> {
        const double v = fn();
        if (!(v >= lo && v <= hi)) {  // !(..) also catches NaN
          return "gauge " + std::to_string(v) + " outside [" +
                 std::to_string(lo) + ", " + std::to_string(hi) + "]";
        }
        return std::nullopt;
      },
      node);
}

void InvariantMonitor::on_delivery(std::uint32_t receiver_key,
                                   std::uint32_t device_id,
                                   std::uint32_t sequence, TimePoint at) {
  ++stats_.deliveries_checked;
  const std::uint64_t key =
      (static_cast<std::uint64_t>(receiver_key) << 32) | device_id;
  SeenSequences& seen = seen_[key];
  if (!seen.set.insert(sequence).second) {
    report("receiver.sequence_unique",
           "device " + std::to_string(device_id) + " sequence " +
               std::to_string(sequence) + " delivered twice at receiver " +
               std::to_string(receiver_key),
           at, device_id);
    return;
  }
  seen.order.push_back(sequence);
  if (seen.order.size() > kSequenceMemory) {
    seen.set.erase(seen.order.front());
    seen.order.pop_front();
  }
}

void InvariantMonitor::report(std::string invariant, std::string detail,
                              TimePoint at, std::uint64_t node) {
  ++stats_.violations;
  if (violations_.size() < kMaxViolations) {
    violations_.push_back(Violation{std::move(invariant),
                                    std::move(detail) + " @" + format_us(at),
                                    at, node});
  }
}

void InvariantMonitor::start(Scheduler& scheduler, Duration period) {
  stop();
  scheduler_ = &scheduler;
  period_ = period;
  sweep_event_ = scheduler_->schedule_in(period_, [this] { sweep(); });
}

void InvariantMonitor::stop() {
  if (scheduler_ != nullptr && sweep_event_) {
    scheduler_->cancel(*sweep_event_);
  }
  sweep_event_.reset();
  scheduler_ = nullptr;
}

void InvariantMonitor::run_checks(TimePoint now) {
  for (Entry& entry : checks_) {
    ++stats_.checks_run;
    if (auto detail = entry.check()) {
      report(entry.name, std::move(*detail), now, entry.node);
    }
  }
}

void InvariantMonitor::sweep() {
  ++stats_.sweeps;
  run_checks(scheduler_->now());
  sweep_event_ = scheduler_->schedule_in(period_, [this] { sweep(); });
}

void InvariantMonitor::publish_metrics(telemetry::MetricsRegistry& registry,
                                       const std::string& prefix) const {
  registry.bind_counter(prefix + ".sweeps", &stats_.sweeps);
  registry.bind_counter(prefix + ".checks_run", &stats_.checks_run);
  registry.bind_counter(prefix + ".violations", &stats_.violations);
  registry.bind_counter(prefix + ".deliveries_checked",
                        &stats_.deliveries_checked);
}

}  // namespace wile::sim
