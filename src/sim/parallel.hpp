// Sharded parallel event core: conservative time windows over
// per-shard schedulers.
//
// The serial simulator (one Scheduler, one Medium) tops out at one
// core. This engine splits space into vertical stripes — shard i owns
// the x-span [x0 + i*w, x0 + (i+1)*w) — and gives every shard its own
// slab/timing-wheel Scheduler and Medium, so a million-node fleet's
// event processing spreads across worker threads. Shards advance in
// lockstep *windows*: each runs its own event loop up to the window
// boundary, then all meet at a barrier, exchange the transmissions
// whose audible circles crossed a stripe edge (position-snapshot
// RemoteTx phantoms, shipped over lock-free SPSC queues), and start
// the next window.
//
// Lookahead and the window length. Classic conservative PDES bounds
// the window by the minimum cross-shard propagation delay: a frame
// born at a stripe edge cannot influence a neighbor node d meters away
// before d / c seconds (phy::kSpeedOfLightMps). At indoor ranges that
// bound is sub-microsecond — honoring it strictly would barrier every
// event and parallelize nothing. This simulator's physics quantize
// propagation anyway (delivery happens at end-of-airtime, zero flight
// delay), so the engine instead uses a fixed window (default 10 ms,
// ScenarioBuilder::window()) and commits cross-shard traffic at window
// barriers: a remote frame whose airtime elapsed before the barrier
// delivers at the barrier instead. The error this admits is bounded by
// one window of cross-shard reaction latency and is identical for
// every thread count — see DESIGN.md §13 for the full contract.
//
// Determinism. Results depend on the SHARD count, never the THREAD
// count: shard assignment, per-shard RNG streams, window boundaries
// and the merge order of injected remotes (sorted by start time, then
// origin shard, then per-origin sequence) are all functions of the
// shard layout alone. Threads only decide which worker executes which
// shard, and the double barrier per window (one after running, one
// after draining) means no shard ever observes a neighbor's partial
// window. tests/test_determinism pins threads={1,2,4} at a fixed shard
// count to identical digests.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "sim/medium.hpp"
#include "sim/scheduler.hpp"
#include "sim/spsc_queue.hpp"
#include "util/units.hpp"

namespace wile::sim {

/// One cross-shard transmission in flight between barriers.
struct BoundaryTx {
  RemoteTx tx;
  std::uint32_t origin_shard = 0;
  /// Per-origin-shard monotonic counter; with (start, origin_shard) it
  /// makes the post-drain merge order a total, thread-independent order.
  std::uint64_t seq = 0;
};

/// Sense-reversing spin barrier. Yields while waiting — on machines
/// with fewer cores than workers (CI runners, the 1-CPU dev box) a hot
/// spin would starve the very threads it waits for. Returns the number
/// of yield loops spent waiting, which the engine surfaces as the
/// per-shard barrier-stall counter.
class SpinBarrier {
 public:
  explicit SpinBarrier(unsigned parties) : parties_(parties) {}

  std::uint64_t arrive_and_wait();

 private:
  const unsigned parties_;
  std::atomic<unsigned> arrived_{0};
  std::atomic<std::uint64_t> generation_{0};
};

/// Stripe partition of the x-axis plus the SPSC queue matrix that
/// carries boundary transmissions between shards.
class ShardRouter {
 public:
  /// Stripes cover [x0_m, x1_m); positions outside clamp to the edge
  /// stripes, so the partition tolerates nodes that wander off the
  /// declared extent.
  ShardRouter(std::size_t shards, double x0_m, double x1_m);

  [[nodiscard]] std::size_t shards() const { return shards_; }
  [[nodiscard]] std::size_t shard_of(double x_m) const;
  /// Owned span of `shard` as [first, second).
  [[nodiscard]] std::pair<double, double> span(std::size_t shard) const;

  /// Producer side; must be called from shard `src`'s owning thread.
  /// Enqueues `tx` to every other shard whose stripe intersects the
  /// audible circle [x - r, x + r].
  void route(std::size_t src, const RemoteTx& tx);

  /// Consumer side; must be called from shard `dst`'s owning thread.
  /// Appends everything queued for `dst` to `out` and sorts the whole
  /// vector into the canonical (start, origin_shard, seq) merge order.
  /// Returns the number of frames drained.
  std::size_t drain(std::size_t dst, std::vector<BoundaryTx>& out);

  /// Frames ever routed out of / into `shard` (exact once quiescent).
  [[nodiscard]] std::uint64_t routed_from(std::size_t shard) const;
  [[nodiscard]] std::uint64_t drained_by(std::size_t shard) const;

 private:
  [[nodiscard]] SpscQueue<BoundaryTx>& queue(std::size_t src, std::size_t dst) {
    return *queues_[src * shards_ + dst];
  }

  std::size_t shards_;
  double x0_m_;
  double stripe_m_;
  std::vector<std::unique_ptr<SpscQueue<BoundaryTx>>> queues_;  // src-major matrix
  std::vector<std::uint64_t> seq_;  // per-src counters, owner-thread private
};

/// Per-shard progress counters, exported through telemetry as
/// parallel.shard<i>.*. Written only by the shard's owning thread
/// during run_until and read after the workers join, so plain fields
/// suffice.
struct ShardStats {
  std::uint64_t windows = 0;
  /// Yield loops spent waiting at window barriers. Recorded on the
  /// owning thread's lowest-numbered shard (threads own shards
  /// {i : i % T == t}, so that is shard t); other shards on the same
  /// thread report 0 rather than double-counting the same wait.
  std::uint64_t barrier_stalls = 0;
  std::uint64_t boundary_tx_out = 0;
  std::uint64_t boundary_tx_in = 0;
};

class ParallelEngine {
 public:
  struct Shard {
    Scheduler* scheduler = nullptr;
    Medium* medium = nullptr;
  };

  /// Wires each shard's Medium for boundary exchange (owned span +
  /// boundary hook) over a router striping [x0_m, x1_m). `threads` is
  /// clamped to the shard count; shard i runs on thread i % threads.
  ParallelEngine(std::vector<Shard> shards, double x0_m, double x1_m,
                 Duration window, unsigned threads);

  /// Advance every shard to `deadline` in lockstep windows. Callable
  /// repeatedly; workers are spawned per call and joined before it
  /// returns. Exceptions thrown inside a shard's event loop abort the
  /// run (remaining windows are skipped on every thread) and are
  /// rethrown here.
  void run_until(TimePoint deadline);

  [[nodiscard]] const std::vector<ShardStats>& shard_stats() const { return stats_; }
  [[nodiscard]] const ShardRouter& router() const { return router_; }
  [[nodiscard]] unsigned threads() const { return threads_; }
  [[nodiscard]] Duration window() const { return window_; }

  /// Aggregates over shards, for drop-in use where the serial engine's
  /// single-scheduler counters were read.
  [[nodiscard]] std::uint64_t total_events_run() const;
  [[nodiscard]] Medium::Stats total_medium_stats() const;
  [[nodiscard]] TimePoint now() const;

 private:
  void worker_loop(unsigned thread_idx, TimePoint start, TimePoint deadline);

  std::vector<Shard> shards_;
  ShardRouter router_;
  Duration window_;
  unsigned threads_;
  SpinBarrier barrier_;
  std::vector<ShardStats> stats_;
  std::atomic<bool> abort_{false};
  std::mutex error_mutex_;
  std::exception_ptr error_;
  /// Per-thread drain scratch, reused across windows (index = thread).
  std::vector<std::vector<BoundaryTx>> drain_scratch_;
};

}  // namespace wile::sim
