#include "sim/csma.hpp"

#include <utility>

#include "dot11/frame.hpp"

namespace wile::sim {

using phy::MacTiming;

Csma::Csma(Scheduler& scheduler, Medium& medium, NodeId self, Rng rng, Config config)
    : scheduler_(scheduler), medium_(medium), self_(self), rng_(rng), config_(config) {}

void Csma::send(Bytes mpdu, phy::WifiRate rate, bool expect_ack, DoneCallback done,
                std::optional<RtsAddresses> rts) {
  Pending p;
  p.mpdu = std::move(mpdu);
  p.rate = rate;
  p.expect_ack = expect_ack;
  p.done = std::move(done);
  p.rts = rts;
  p.cw = config_.cw_min;
  queue_.push_back(std::move(p));
  if (!busy_) start_next();
}

void Csma::send_raw(Bytes mpdu, Duration airtime, DoneCallback done) {
  Pending p;
  p.mpdu = std::move(mpdu);
  p.expect_ack = false;
  p.done = std::move(done);
  p.raw_airtime = airtime;
  p.cw = config_.cw_min;
  queue_.push_back(std::move(p));
  if (!busy_) start_next();
}

void Csma::start_next() {
  if (queue_.empty()) return;
  busy_ = true;
  current_ = std::move(queue_.front());
  queue_.pop_front();
  begin_access();
}

void Csma::begin_access() {
  ++current_->transmissions;
  sense_difs(Duration{0});
}

void Csma::observe_nav(std::uint16_t duration_us) {
  if (duration_us & 0x8000) return;  // AID / CFP encodings, not a NAV value
  const TimePoint until = scheduler_.now() + Duration{duration_us};
  if (until > nav_until_) nav_until_ = until;
}

bool Csma::channel_busy() const {
  // Physical carrier sense OR virtual carrier sense (NAV).
  return medium_.carrier_busy(self_) || scheduler_.now() < nav_until_;
}

void Csma::sense_difs(Duration observed_idle) {
  // Sample the channel each slot; after a contiguous DIFS of idle,
  // proceed to backoff.
  if (channel_busy()) {
    scheduler_.schedule_in(MacTiming::kSlot,
                           [this] { sense_difs(Duration{0}); });
    return;
  }
  if (observed_idle >= MacTiming::kDifs) {
    const int slots = static_cast<int>(rng_.below(static_cast<std::uint64_t>(current_->cw) + 1));
    backoff_slot(slots);
    return;
  }
  scheduler_.schedule_in(MacTiming::kSlot, [this, observed_idle] {
    sense_difs(observed_idle + MacTiming::kSlot);
  });
}

void Csma::backoff_slot(int remaining_slots) {
  if (channel_busy()) {
    // Freeze the counter; defer again for DIFS before resuming.
    scheduler_.schedule_in(MacTiming::kSlot, [this, remaining_slots] {
      resume_after_busy(remaining_slots);
    });
    return;
  }
  if (remaining_slots <= 0) {
    transmit_now();
    return;
  }
  scheduler_.schedule_in(MacTiming::kSlot,
                         [this, remaining_slots] { backoff_slot(remaining_slots - 1); });
}

void Csma::resume_after_busy(int remaining_slots) {
  if (channel_busy()) {
    scheduler_.schedule_in(MacTiming::kSlot, [this, remaining_slots] {
      resume_after_busy(remaining_slots);
    });
    return;
  }
  // Channel went idle again: wait a fresh DIFS then continue the frozen
  // backoff countdown.
  scheduler_.schedule_in(MacTiming::kDifs,
                         [this, remaining_slots] { backoff_slot(remaining_slots); });
}

void Csma::transmit_now() {
  if (current_->rts && current_->mpdu.size() >= config_.rts_threshold) {
    transmit_rts();
  } else {
    transmit_data();
  }
}

void Csma::transmit_rts() {
  const Duration cts_time = phy::ack_airtime(config_.band);  // same 14-byte format
  const Duration data_time =
      phy::frame_airtime(current_->mpdu.size(), current_->rate, config_.band);
  Duration reserved = MacTiming::kSifs + cts_time + MacTiming::kSifs + data_time;
  if (current_->expect_ack) {
    reserved = reserved + MacTiming::kSifs + phy::ack_airtime(config_.band);
  }
  TxRequest req;
  req.mpdu = dot11::build_rts(current_->rts->receiver, current_->rts->transmitter,
                              static_cast<std::uint16_t>(reserved.count()));
  req.airtime = phy::frame_airtime(req.mpdu.size(), phy::kControlResponseRate, config_.band);
  req.tx_power_dbm = config_.tx_power_dbm;
  req.rate = phy::kControlResponseRate;
  req.on_complete = [this] {
    awaiting_cts_ = true;
    const Duration timeout =
        MacTiming::kSifs + phy::ack_airtime(config_.band) + MacTiming::kSlot;
    cts_timer_ = scheduler_.schedule_in(timeout, [this] { on_cts_timeout(); });
  };
  if (tx_listener_) tx_listener_(req.airtime, phy::kControlResponseRate);
  medium_.transmit(self_, std::move(req));
}

void Csma::notify_cts() {
  if (!awaiting_cts_) return;
  awaiting_cts_ = false;
  if (cts_timer_) {
    scheduler_.cancel(*cts_timer_);
    cts_timer_.reset();
  }
  // Data follows the CTS after SIFS, no re-contention.
  scheduler_.schedule_in(MacTiming::kSifs, [this] {
    if (current_) transmit_data();
  });
}

void Csma::on_cts_timeout() {
  if (!awaiting_cts_) return;
  awaiting_cts_ = false;
  cts_timer_.reset();
  retry_or_fail();
}

void Csma::transmit_data() {
  TxRequest req;
  // Fill the Duration/ID field just before transmission: unicast frames
  // reserve the channel through their ACK (SIFS + ACK airtime).
  if (current_->expect_ack) {
    const auto nav = static_cast<std::uint16_t>(
        (MacTiming::kSifs + phy::ack_airtime(config_.band)).count());
    req.mpdu = dot11::with_duration(current_->mpdu, nav);
  } else {
    req.mpdu = current_->mpdu;
  }
  if (current_->raw_airtime) {
    req.airtime = *current_->raw_airtime;
    req.rate = std::nullopt;
  } else {
    req.airtime = phy::frame_airtime(current_->mpdu.size(), current_->rate, config_.band);
    req.rate = current_->rate;
  }
  req.tx_power_dbm = config_.tx_power_dbm;
  req.on_complete = [this] { on_tx_complete(); };
  if (tx_listener_) tx_listener_(req.airtime, current_->rate);
  medium_.transmit(self_, std::move(req));
}

void Csma::on_tx_complete() {
  if (!current_->expect_ack) {
    finish(true);
    return;
  }
  awaiting_ack_ = true;
  // ACK timeout: SIFS + ACK airtime + one slot of slack.
  const Duration timeout =
      MacTiming::kSifs + phy::ack_airtime(config_.band) + MacTiming::kSlot;
  ack_timer_ = scheduler_.schedule_in(timeout, [this] { on_ack_timeout(); });
}

void Csma::notify_ack() {
  if (!awaiting_ack_) return;
  awaiting_ack_ = false;
  if (ack_timer_) {
    scheduler_.cancel(*ack_timer_);
    ack_timer_.reset();
  }
  finish(true);
}

void Csma::on_ack_timeout() {
  if (!awaiting_ack_) return;
  awaiting_ack_ = false;
  ack_timer_.reset();
  retry_or_fail();
}

void Csma::retry_or_fail() {
  if (current_->transmissions > config_.retry_limit) {
    finish(false);
    return;
  }
  current_->cw = std::min(current_->cw * 2 + 1, config_.cw_max);
  begin_access();
}

void Csma::finish(bool success) {
  awaiting_cts_ = false;
  if (cts_timer_) {
    scheduler_.cancel(*cts_timer_);
    cts_timer_.reset();
  }
  Result result;
  result.success = success;
  result.transmissions = current_->transmissions;
  DoneCallback done = std::move(current_->done);
  current_.reset();
  busy_ = false;
  if (done) done(result);
  // The callback may have queued more work.
  if (!busy_ && !queue_.empty()) start_next();
}

}  // namespace wile::sim
