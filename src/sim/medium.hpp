// Broadcast radio medium with propagation, collisions and carrier sense.
//
// Every radio in a simulation attaches to a Medium. A transmission
// occupies the channel for its airtime; at the end of the airtime each
// awake receiver either decodes the frame, loses it to channel error
// (per the Channel's SNR->PER model), or loses it to a collision (any
// overlapping transmission audible above the carrier-sense floor).
// The WiFi network and the BLE pair run on separate Medium instances —
// separate bands in the real world.
//
// Fleet-scale design: nodes are indexed by a sparse uniform grid over
// their positions, so delivering a transmission (and pre-filtering
// carrier sense) only visits cells within the maximum audible radius
// for the TX power — derived by inverting Channel::rx_power_dbm down
// to the carrier-sense floor — instead of every attached node. Path
// loss between static nodes is cached per pair in a flat open-addressed
// table (no per-entry allocation, linear probing over one contiguous
// array), and the frame payload is a refcounted FrameBuffer shared by
// all receivers, so one transmission heard by a thousand radios
// performs zero payload copies. Candidate receivers are visited in
// ascending NodeId order either way, so the RNG draw sequence — and
// therefore every simulation outcome — is bit-for-bit identical with
// the spatial grid on or off (the dense path survives as the
// equivalence oracle; see tests/test_determinism).
//
// Per-node hot state is structure-of-arrays: position coordinates,
// path-loss epochs and radio flag bytes live in parallel contiguous
// vectors rather than one array-of-structs, so the delivery and
// carrier-sense loops touch only the columns they read (a collision
// scan streams positions at 16 B/node instead of dragging a 56 B
// struct through cache) and a million-node fleet costs ~25 B/node of
// medium state. Rarely-set state (per-node loss floors) is a sparse
// side map guarded by an emptiness check so unimpaired fleets never
// pay the lookup.
//
// Sharded operation (sim/parallel.hpp): a Medium can be told the x-span
// it owns via set_owned_span(); transmissions whose audible circle
// pokes outside that span are handed to the boundary hook, and
// transmissions originated by *other* shards enter through
// inject_remote() as position-snapshot phantoms that participate in
// carrier sense, collision interference and delivery exactly like
// local ones — but own no local node, so they never flip local
// transmit flags and never fire a completion callback.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "phy/channel.hpp"
#include "sim/scheduler.hpp"
#include "telemetry/metrics.hpp"
#include "util/byte_buffer.hpp"
#include "util/frame_buffer.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace wile::sim {

using NodeId = std::uint32_t;

struct Position {
  double x_m = 0.0;
  double y_m = 0.0;
};

double distance_m(const Position& a, const Position& b);

/// A frame as seen by a receiver. `mpdu` is a refcounted view of the
/// transmitted payload, shared by every receiver of the transmission;
/// it converts implicitly to BytesView for parsing and stays alive as
/// long as any copy of this RxFrame does.
struct RxFrame {
  NodeId transmitter{};
  FrameBuffer mpdu;
  double rx_power_dbm = 0.0;
  double snr_db = 0.0;
  Duration airtime{};
  std::optional<phy::WifiRate> rate;  // nullopt for non-WiFi media (BLE)
};

/// Receiver interface implemented by every node's radio.
class MediumClient {
 public:
  virtual ~MediumClient() = default;

  /// A frame finished and decoded at this node.
  virtual void on_frame(const RxFrame& frame) = 0;

  /// A frame finished but was not decodable (collision or channel loss).
  /// `collision` distinguishes overlap losses from channel-error losses.
  virtual void on_corrupt_frame(const RxFrame& frame, bool collision) {
    (void)frame;
    (void)collision;
  }

  /// Whether this radio can currently hear the channel (powered, not
  /// transmitting, not asleep). Sampled at the *end* of each
  /// transmission; a radio must be listening for the whole frame in a
  /// real receiver, but end-sampling is the standard simulator shortcut
  /// and conservative for our energy questions.
  [[nodiscard]] virtual bool rx_enabled() const = 0;
};

struct TxRequest {
  Bytes mpdu;
  Duration airtime{};
  double tx_power_dbm = 0.0;
  std::optional<phy::WifiRate> rate;  // enables the WiFi PER model
  /// Invoked on the transmitter when the last bit leaves the antenna.
  std::function<void()> on_complete;
};

/// A transmission crossing a shard boundary, as shipped between shards
/// by the parallel engine. Carries a position snapshot because the
/// origin node is not attached to the receiving shard's Medium; the
/// FrameBuffer is refcounted (atomic), so the payload bytes are shared
/// across shards with zero copies.
struct RemoteTx {
  NodeId origin_node{};  ///< id in the ORIGIN shard's node space
  Position origin;       ///< transmitter position at TX start
  TimePoint start{};
  TimePoint end{};
  double tx_power_dbm = 0.0;
  double audible_range_m = 0.0;
  FrameBuffer mpdu;
  Duration airtime{};
  std::optional<phy::WifiRate> rate;
};

class Medium {
 public:
  Medium(Scheduler& scheduler, phy::Channel channel, Rng rng);

  /// Attach a radio at a position. The returned id identifies the node in
  /// all later calls.
  NodeId attach(MediumClient* client, Position position);

  void set_position(NodeId id, Position position);
  [[nodiscard]] Position position(NodeId id) const;

  /// Begin a transmission. Throws if this node is already transmitting.
  /// The request's payload is moved into a shared FrameBuffer; receivers
  /// see the same bytes without further copies.
  void transmit(NodeId transmitter, TxRequest request);

  /// Carrier sense at `listener`: any in-flight transmission audible
  /// above the CS threshold (including the node's own).
  ///
  /// Semantics, pinned by test_sim.MediumTest.CarrierSense*: carrier
  /// sense is *energy detection at the antenna* and is deliberately
  /// asymmetric with frame delivery —
  ///   * rx_blocked is ignored: injected deafness models a dead decode
  ///     path (crashed firmware), not a removed antenna, so CCA still
  ///     reports the channel busy and a polite transmitter still defers;
  ///   * noise_offset_db is ignored: kCarrierSenseDbm is an absolute
  ///     received-power threshold (802.11 preamble detection), not an
  ///     SNR test. Injected wideband noise degrades the SNR used for
  ///     decode at delivery time but does not change what counts as a
  ///     detectable transmission.
  [[nodiscard]] bool carrier_busy(NodeId listener) const;

  [[nodiscard]] bool transmitting(NodeId id) const;

  [[nodiscard]] const phy::Channel& channel() const { return channel_; }

  // --- sharding hooks (driven by sim::ParallelEngine) ------------------------

  /// Declare the x-span [x0, x1) this medium's shard owns. Once set,
  /// transmit() tests every transmission's audible circle against the
  /// span and hands escapees to the boundary hook for cross-shard
  /// routing. Unset (the default) = the medium owns all of space and
  /// nothing ever crosses.
  void set_owned_span(double x0_m, double x1_m) {
    span_x0_m_ = x0_m;
    span_x1_m_ = x1_m;
    span_set_ = true;
  }

  /// Called from transmit() for every boundary-crossing transmission,
  /// with a position-snapshot RemoteTx ready to ship. The hook runs on
  /// the shard's own thread; routing/queueing is the caller's problem.
  void set_boundary_hook(std::function<void(const RemoteTx&)> hook) {
    boundary_hook_ = std::move(hook);
  }

  /// Inject a transmission originated by another shard. The phantom
  /// participates in carrier sense, collision interference and delivery
  /// to local nodes; it owns no local node (no transmit flag, no
  /// completion callback) and does not count in stats().transmissions —
  /// the origin shard already counted it. Delivery fires at
  /// max(end, now): a frame whose airtime already elapsed by the time
  /// the window barrier shipped it delivers at injection time, which is
  /// the conservative-window quantization DESIGN.md §13 documents.
  void inject_remote(const RemoteTx& rtx);

  // --- impairment hooks (driven by sim::FaultInjector) -----------------------
  // These model time-varying channel degradation without touching the
  // Channel's calibration: an interference-driven noise-floor rise, a
  // blanket PER multiplier (e.g. microwave-oven style wideband bursts),
  // and per-node receive blackouts (radio deafness / crashed firmware).

  /// Extra noise (dB) added on top of the channel's noise floor when
  /// computing SNR at delivery time. 0 = unimpaired. Does not affect
  /// carrier sense (see carrier_busy).
  void set_noise_offset_db(double db) { noise_offset_db_ = db; }
  [[nodiscard]] double noise_offset_db() const { return noise_offset_db_; }

  /// Multiplies every computed packet error rate (clamped to 1.0).
  void set_per_multiplier(double m) { per_multiplier_ = m; }
  [[nodiscard]] double per_multiplier() const { return per_multiplier_; }

  /// SNR-independent baseline loss probability, applied as an
  /// independent erasure process on top of the model PER (so a clean
  /// short-range link still drops `p` of its frames). This is the knob
  /// FEC ablations use to inject an exact packet error rate.
  ///
  /// Non-finite inputs assert in debug builds and are dropped (treated
  /// as 0) in release: std::clamp would silently pass NaN through, and a
  /// NaN floor poisons every subsequent PER draw.
  void set_loss_floor(double p) {
    assert(std::isfinite(p) && "Medium::set_loss_floor: non-finite floor");
    loss_floor_ = std::isfinite(p) ? std::clamp(p, 0.0, 1.0) : 0.0;
  }
  [[nodiscard]] double loss_floor() const { return loss_floor_; }

  /// Per-node erasure floor, stacking with the global floor as an
  /// independent loss process (1 - (1-global)(1-node)). Models a single
  /// device behind drywall or with a detuned antenna; FaultInjector's
  /// per-device floor windows drive this. Same NaN hardening as
  /// set_loss_floor. Stored sparsely: fleets with no impaired node pay
  /// one emptiness check per delivery, not a per-node column.
  void set_node_loss_floor(NodeId id, double p);
  [[nodiscard]] double node_loss_floor(NodeId id) const;

  /// Block/unblock frame delivery to a node (its transmit path still
  /// works — a deaf radio can shout, and its antenna still senses
  /// carrier; see carrier_busy).
  void set_rx_blocked(NodeId id, bool blocked);
  [[nodiscard]] bool rx_blocked(NodeId id) const;

  /// Toggle the spatial index. Disabled = the exhaustive per-node scan
  /// the seed implementation used; kept as the equivalence oracle for
  /// determinism tests. Results are identical either way.
  void set_spatial_grid_enabled(bool enabled) { grid_enabled_ = enabled; }
  [[nodiscard]] bool spatial_grid_enabled() const { return grid_enabled_; }

  /// Carrier-sense / preamble-detection floor.
  static constexpr double kCarrierSenseDbm = -82.0;

  /// Total frames delivered/lost, for tests and loss-rate benches.
  struct Stats {
    std::uint64_t transmissions = 0;
    std::uint64_t deliveries = 0;
    std::uint64_t collision_losses = 0;
    std::uint64_t channel_losses = 0;
    friend bool operator==(const Stats&, const Stats&) = default;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// In-flight transmissions right now (each holds one FrameBuffer).
  /// With FrameBuffer::live_buffers() this forms the chaos harness's
  /// leak oracle: once the channel is idle, no payload buffers other
  /// than those owned by active transmissions may remain alive.
  [[nodiscard]] std::size_t active_transmissions() const { return active_.size(); }

  /// Attached node count (SoA columns all share this length).
  [[nodiscard]] std::size_t node_count() const { return clients_.size(); }

  /// Register this medium's counters with a telemetry registry under
  /// `prefix` ("medium.transmissions", ...). The registry binds pointers
  /// to the same slots stats() exposes, so the legacy accessor and the
  /// registry can never disagree, and the TX/RX hot path is untouched.
  void publish_metrics(telemetry::MetricsRegistry& registry,
                       const std::string& prefix = "medium") const;

 private:
  struct Interferer {
    NodeId transmitter{};
    double tx_power_dbm = 0.0;
    /// Remote interferers carry a position snapshot (their node lives in
    /// another shard); local ones resolve position at delivery time so a
    /// node that moved mid-flight interferes from where it is — the
    /// serial semantics the determinism digests pin.
    bool remote = false;
    Position origin;
  };

  struct ActiveTx {
    std::uint64_t id = 0;
    NodeId transmitter{};
    TimePoint start{};
    TimePoint end{};
    double tx_power_dbm = 0.0;
    /// Conservative upper bound on how far this TX is audible (grid
    /// query radius and carrier-sense pre-filter).
    double audible_range_m = 0.0;
    /// Phantom mirrored from another shard: `transmitter` is an id in
    /// the ORIGIN shard's space and `origin` is the authoritative
    /// position; identity comparisons against local ids are skipped.
    bool remote = false;
    Position origin;
    // The request, moved in at transmit() so the completion event
    // captures only {this, id} (fits the scheduler's inline storage)
    // and delivery never copies it.
    FrameBuffer mpdu;
    Duration airtime{};
    std::optional<phy::WifiRate> rate;
    std::function<void()> on_complete;
    /// Transmissions that overlapped this one at any point.
    std::vector<Interferer> interferers;
  };

  void finish_transmission(std::uint64_t tx_id);
  void deliver(const ActiveTx& tx);
  [[nodiscard]] double rx_power_at(const ActiveTx& tx, NodeId listener) const;
  /// Log-distance path loss between two nodes, cached while neither
  /// moves (static fleets pay the log10 once per pair).
  [[nodiscard]] double path_loss_db(NodeId a, NodeId b) const;
  [[nodiscard]] double audible_range_m(double tx_power_dbm) const;

  // --- SoA node state --------------------------------------------------------
  static constexpr std::uint8_t kFlagTransmitting = 1u << 0;
  static constexpr std::uint8_t kFlagRxBlocked = 1u << 1;

  void check_id(NodeId id) const {
    if (id >= clients_.size()) throw std::out_of_range("Medium: bad NodeId");
  }
  [[nodiscard]] Position node_position(NodeId id) const {
    return Position{pos_x_[id], pos_y_[id]};
  }
  [[nodiscard]] Position tx_origin(const ActiveTx& tx) const {
    return tx.remote ? tx.origin : node_position(tx.transmitter);
  }

  // --- spatial grid ----------------------------------------------------------
  [[nodiscard]] std::int32_t cell_coord(double meters) const;
  static std::uint64_t cell_key(std::int32_t cx, std::int32_t cy);
  void grid_insert(NodeId id, const Position& pos);
  void grid_remove(NodeId id, const Position& pos);
  /// All nodes within `range_m` of `center` (plus grid-granularity
  /// slack), appended to `out` in arbitrary order.
  void collect_in_range(const Position& center, double range_m,
                        std::vector<NodeId>& out) const;

  Scheduler& scheduler_;
  phy::Channel channel_;
  Rng rng_;

  // Node state columns, indexed by NodeId. Parallel vectors instead of
  // a struct vector: the delivery/CCA hot loops stream only positions
  // and flags, and each column is one contiguous arena-style slab.
  std::vector<MediumClient*> clients_;
  std::vector<double> pos_x_;
  std::vector<double> pos_y_;
  /// Bumped on set_position; invalidates cached path losses.
  std::vector<std::uint32_t> position_epochs_;
  std::vector<std::uint8_t> node_flags_;
  /// Sparse: only nodes with a floor set appear (see set_node_loss_floor).
  std::unordered_map<NodeId, double> node_loss_floors_;

  std::vector<ActiveTx> active_;  // includes transmissions ending this instant
  std::uint64_t next_tx_id_ = 1;
  Stats stats_;
  double noise_offset_db_ = 0.0;
  double per_multiplier_ = 1.0;
  double loss_floor_ = 0.0;

  bool span_set_ = false;
  double span_x0_m_ = 0.0;
  double span_x1_m_ = 0.0;
  std::function<void(const RemoteTx&)> boundary_hook_;

  bool grid_enabled_ = true;
  double cell_size_m_ = 25.0;  // set from the channel in the ctor
  std::unordered_map<std::uint64_t, std::vector<NodeId>> cells_;
  std::vector<NodeId> delivery_scratch_;

  // --- flat path-loss cache --------------------------------------------------
  // Open-addressed, linear probing, power-of-two capacity. Replaces the
  // unordered_map the seed used: no per-entry heap node (24 B/slot flat
  // vs ~56 B/entry + allocator overhead), and the probe walks one cache
  // line instead of chasing a bucket list. Keyed by (lo_id<<32 | hi_id);
  // lo < hi always (callers never ask for a self-loss), so the all-ones
  // key can serve as the empty sentinel. Doubles until
  // kMaxPathLossSlots, then clears wholesale like the seed did.
  struct PathLossSlot {
    std::uint64_t key = kEmptySlotKey;
    double loss_db = 0.0;
    std::uint32_t epoch_a = 0;
    std::uint32_t epoch_b = 0;
  };
  static constexpr std::uint64_t kEmptySlotKey = ~std::uint64_t{0};
  static constexpr std::size_t kInitialPathLossSlots = 1u << 12;
  static constexpr std::size_t kMaxPathLossSlots = 1u << 22;
  void path_loss_store(std::uint64_t key, double loss, std::uint32_t ea,
                       std::uint32_t eb) const;
  mutable std::vector<PathLossSlot> path_loss_slots_;
  mutable std::size_t path_loss_used_ = 0;
};

}  // namespace wile::sim
