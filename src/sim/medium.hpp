// Broadcast radio medium with propagation, collisions and carrier sense.
//
// Every radio in a simulation attaches to a Medium. A transmission
// occupies the channel for its airtime; at the end of the airtime each
// awake receiver either decodes the frame, loses it to channel error
// (per the Channel's SNR->PER model), or loses it to a collision (any
// overlapping transmission audible above the carrier-sense floor).
// The WiFi network and the BLE pair run on separate Medium instances —
// separate bands in the real world.
//
// Fleet-scale design: nodes are indexed by a sparse uniform grid over
// their positions, so delivering a transmission (and pre-filtering
// carrier sense) only visits cells within the maximum audible radius
// for the TX power — derived by inverting Channel::rx_power_dbm down
// to the carrier-sense floor — instead of every attached node. Path
// loss between static nodes is cached per pair, and the frame payload
// is a refcounted FrameBuffer shared by all receivers, so one
// transmission heard by a thousand radios performs zero payload copies.
// Candidate receivers are visited in ascending NodeId order either way,
// so the RNG draw sequence — and therefore every simulation outcome —
// is bit-for-bit identical with the spatial grid on or off (the dense
// path survives as the equivalence oracle; see tests/test_determinism).
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "phy/channel.hpp"
#include "sim/scheduler.hpp"
#include "telemetry/metrics.hpp"
#include "util/byte_buffer.hpp"
#include "util/frame_buffer.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace wile::sim {

using NodeId = std::uint32_t;

struct Position {
  double x_m = 0.0;
  double y_m = 0.0;
};

double distance_m(const Position& a, const Position& b);

/// A frame as seen by a receiver. `mpdu` is a refcounted view of the
/// transmitted payload, shared by every receiver of the transmission;
/// it converts implicitly to BytesView for parsing and stays alive as
/// long as any copy of this RxFrame does.
struct RxFrame {
  NodeId transmitter{};
  FrameBuffer mpdu;
  double rx_power_dbm = 0.0;
  double snr_db = 0.0;
  Duration airtime{};
  std::optional<phy::WifiRate> rate;  // nullopt for non-WiFi media (BLE)
};

/// Receiver interface implemented by every node's radio.
class MediumClient {
 public:
  virtual ~MediumClient() = default;

  /// A frame finished and decoded at this node.
  virtual void on_frame(const RxFrame& frame) = 0;

  /// A frame finished but was not decodable (collision or channel loss).
  /// `collision` distinguishes overlap losses from channel-error losses.
  virtual void on_corrupt_frame(const RxFrame& frame, bool collision) {
    (void)frame;
    (void)collision;
  }

  /// Whether this radio can currently hear the channel (powered, not
  /// transmitting, not asleep). Sampled at the *end* of each
  /// transmission; a radio must be listening for the whole frame in a
  /// real receiver, but end-sampling is the standard simulator shortcut
  /// and conservative for our energy questions.
  [[nodiscard]] virtual bool rx_enabled() const = 0;
};

struct TxRequest {
  Bytes mpdu;
  Duration airtime{};
  double tx_power_dbm = 0.0;
  std::optional<phy::WifiRate> rate;  // enables the WiFi PER model
  /// Invoked on the transmitter when the last bit leaves the antenna.
  std::function<void()> on_complete;
};

class Medium {
 public:
  Medium(Scheduler& scheduler, phy::Channel channel, Rng rng);

  /// Attach a radio at a position. The returned id identifies the node in
  /// all later calls.
  NodeId attach(MediumClient* client, Position position);

  void set_position(NodeId id, Position position);
  [[nodiscard]] Position position(NodeId id) const;

  /// Begin a transmission. Throws if this node is already transmitting.
  /// The request's payload is moved into a shared FrameBuffer; receivers
  /// see the same bytes without further copies.
  void transmit(NodeId transmitter, TxRequest request);

  /// Carrier sense at `listener`: any in-flight transmission audible
  /// above the CS threshold (including the node's own).
  ///
  /// Semantics, pinned by test_sim.MediumTest.CarrierSense*: carrier
  /// sense is *energy detection at the antenna* and is deliberately
  /// asymmetric with frame delivery —
  ///   * rx_blocked is ignored: injected deafness models a dead decode
  ///     path (crashed firmware), not a removed antenna, so CCA still
  ///     reports the channel busy and a polite transmitter still defers;
  ///   * noise_offset_db is ignored: kCarrierSenseDbm is an absolute
  ///     received-power threshold (802.11 preamble detection), not an
  ///     SNR test. Injected wideband noise degrades the SNR used for
  ///     decode at delivery time but does not change what counts as a
  ///     detectable transmission.
  [[nodiscard]] bool carrier_busy(NodeId listener) const;

  [[nodiscard]] bool transmitting(NodeId id) const;

  [[nodiscard]] const phy::Channel& channel() const { return channel_; }

  // --- impairment hooks (driven by sim::FaultInjector) -----------------------
  // These model time-varying channel degradation without touching the
  // Channel's calibration: an interference-driven noise-floor rise, a
  // blanket PER multiplier (e.g. microwave-oven style wideband bursts),
  // and per-node receive blackouts (radio deafness / crashed firmware).

  /// Extra noise (dB) added on top of the channel's noise floor when
  /// computing SNR at delivery time. 0 = unimpaired. Does not affect
  /// carrier sense (see carrier_busy).
  void set_noise_offset_db(double db) { noise_offset_db_ = db; }
  [[nodiscard]] double noise_offset_db() const { return noise_offset_db_; }

  /// Multiplies every computed packet error rate (clamped to 1.0).
  void set_per_multiplier(double m) { per_multiplier_ = m; }
  [[nodiscard]] double per_multiplier() const { return per_multiplier_; }

  /// SNR-independent baseline loss probability, applied as an
  /// independent erasure process on top of the model PER (so a clean
  /// short-range link still drops `p` of its frames). This is the knob
  /// FEC ablations use to inject an exact packet error rate.
  ///
  /// Non-finite inputs assert in debug builds and are dropped (treated
  /// as 0) in release: std::clamp would silently pass NaN through, and a
  /// NaN floor poisons every subsequent PER draw.
  void set_loss_floor(double p) {
    assert(std::isfinite(p) && "Medium::set_loss_floor: non-finite floor");
    loss_floor_ = std::isfinite(p) ? std::clamp(p, 0.0, 1.0) : 0.0;
  }
  [[nodiscard]] double loss_floor() const { return loss_floor_; }

  /// Per-node erasure floor, stacking with the global floor as an
  /// independent loss process (1 - (1-global)(1-node)). Models a single
  /// device behind drywall or with a detuned antenna; FaultInjector's
  /// per-device floor windows drive this. Same NaN hardening as
  /// set_loss_floor.
  void set_node_loss_floor(NodeId id, double p);
  [[nodiscard]] double node_loss_floor(NodeId id) const;

  /// Block/unblock frame delivery to a node (its transmit path still
  /// works — a deaf radio can shout, and its antenna still senses
  /// carrier; see carrier_busy).
  void set_rx_blocked(NodeId id, bool blocked);
  [[nodiscard]] bool rx_blocked(NodeId id) const;

  /// Toggle the spatial index. Disabled = the exhaustive per-node scan
  /// the seed implementation used; kept as the equivalence oracle for
  /// determinism tests. Results are identical either way.
  void set_spatial_grid_enabled(bool enabled) { grid_enabled_ = enabled; }
  [[nodiscard]] bool spatial_grid_enabled() const { return grid_enabled_; }

  /// Carrier-sense / preamble-detection floor.
  static constexpr double kCarrierSenseDbm = -82.0;

  /// Total frames delivered/lost, for tests and loss-rate benches.
  struct Stats {
    std::uint64_t transmissions = 0;
    std::uint64_t deliveries = 0;
    std::uint64_t collision_losses = 0;
    std::uint64_t channel_losses = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// In-flight transmissions right now (each holds one FrameBuffer).
  /// With FrameBuffer::live_buffers() this forms the chaos harness's
  /// leak oracle: once the channel is idle, no payload buffers other
  /// than those owned by active transmissions may remain alive.
  [[nodiscard]] std::size_t active_transmissions() const { return active_.size(); }

  /// Register this medium's counters with a telemetry registry under
  /// `prefix` ("medium.transmissions", ...). The registry binds pointers
  /// to the same slots stats() exposes, so the legacy accessor and the
  /// registry can never disagree, and the TX/RX hot path is untouched.
  void publish_metrics(telemetry::MetricsRegistry& registry,
                       const std::string& prefix = "medium") const;

 private:
  struct Interferer {
    NodeId transmitter{};
    double tx_power_dbm = 0.0;
  };

  struct ActiveTx {
    std::uint64_t id = 0;
    NodeId transmitter{};
    TimePoint start{};
    TimePoint end{};
    double tx_power_dbm = 0.0;
    /// Conservative upper bound on how far this TX is audible (grid
    /// query radius and carrier-sense pre-filter).
    double audible_range_m = 0.0;
    // The request, moved in at transmit() so the completion event
    // captures only {this, id} (fits the scheduler's inline storage)
    // and delivery never copies it.
    FrameBuffer mpdu;
    Duration airtime{};
    std::optional<phy::WifiRate> rate;
    std::function<void()> on_complete;
    /// Transmissions that overlapped this one at any point.
    std::vector<Interferer> interferers;
  };

  struct NodeEntry {
    MediumClient* client = nullptr;
    Position position;
    bool transmitting = false;
    bool rx_blocked = false;
    /// Bumped on set_position; invalidates cached path losses.
    std::uint32_t position_epoch = 0;
    /// Per-node erasure floor (set_node_loss_floor); 0 = none.
    double loss_floor = 0.0;
  };

  void finish_transmission(std::uint64_t tx_id);
  void deliver(const ActiveTx& tx);
  [[nodiscard]] double rx_power_at(const ActiveTx& tx, NodeId listener) const;
  /// Log-distance path loss between two nodes, cached while neither
  /// moves (static fleets pay the log10 once per pair).
  [[nodiscard]] double path_loss_db(NodeId a, NodeId b) const;
  [[nodiscard]] double audible_range_m(double tx_power_dbm) const;

  // --- spatial grid ----------------------------------------------------------
  [[nodiscard]] std::int32_t cell_coord(double meters) const;
  static std::uint64_t cell_key(std::int32_t cx, std::int32_t cy);
  void grid_insert(NodeId id, const Position& pos);
  void grid_remove(NodeId id, const Position& pos);
  /// All nodes within `range_m` of `center` (plus grid-granularity
  /// slack), appended to `out` in arbitrary order.
  void collect_in_range(const Position& center, double range_m,
                        std::vector<NodeId>& out) const;

  Scheduler& scheduler_;
  phy::Channel channel_;
  Rng rng_;
  std::vector<NodeEntry> nodes_;
  std::vector<ActiveTx> active_;  // includes transmissions ending this instant
  std::uint64_t next_tx_id_ = 1;
  Stats stats_;
  double noise_offset_db_ = 0.0;
  double per_multiplier_ = 1.0;
  double loss_floor_ = 0.0;

  bool grid_enabled_ = true;
  double cell_size_m_ = 25.0;  // set from the channel in the ctor
  std::unordered_map<std::uint64_t, std::vector<NodeId>> cells_;
  std::vector<NodeId> delivery_scratch_;

  struct PathLossEntry {
    double loss_db = 0.0;
    std::uint32_t epoch_a = 0;
    std::uint32_t epoch_b = 0;
  };
  /// Keyed by (lo_id << 32 | hi_id); bounded — cleared wholesale when it
  /// would exceed kMaxPathLossEntries.
  static constexpr std::size_t kMaxPathLossEntries = 1u << 22;
  mutable std::unordered_map<std::uint64_t, PathLossEntry> path_loss_cache_;
};

}  // namespace wile::sim
