// Seeded chaos campaigns over the fault vocabulary, plus minimal-repro
// shrinking.
//
// Hand-written fault scripts (tests/test_fault_injection.cpp) probe the
// failure modes we already thought of. The ChaosEngine searches the
// rest of the space: from a single seed it draws a randomized campaign
// of fault actions — AP outages, jammer windows, loss-floor steps,
// per-device floors, clock-drift steps, brown-outs, harvest fades, RF
// droughts — and arms them against any scenario through a ChaosTargets
// binding. Campaigns are plain data (serializable as a JSON fault
// script), so a failing one can be re-armed verbatim, shrunk, and
// shipped as a repro file:
//
//   Campaign c = generate_campaign(seed, config);
//   schedule_campaign(c, targets);          // arm against a scenario
//   ... run; InvariantMonitor trips ...
//   ShrinkResult r = shrink_campaign(c, [&](const Campaign& cand) {
//     return replay_and_check(cand);        // fresh scenario per probe
//   });
//   write_repro_file("chaos_repro_42.json", ...);
//
// The shrinker is ddmin-style delta debugging over the action list:
// it needs only a black-box "does this subset still reproduce?"
// predicate, and because campaigns and scenarios are seed-deterministic
// the predicate is stable — the minimal script replays identically
// forever. bench/chaos_soak drives the whole loop at fleet scale.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sim/fault.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace wile::sim {

/// Everything the generator knows how to inject. Keep in sync with
/// kind_name()/kind_from_name() in chaos.cpp (the JSON vocabulary).
enum class FaultKind : std::uint8_t {
  kApOutage,        // window: AP down (real hooks, or gateway radio deafness)
  kJammer,          // window: duty-cycled interferer; magnitude = duty cycle
  kNoiseRise,       // window: noise floor + magnitude dB
  kPerMultiplier,   // window: PER x magnitude
  kLossFloor,       // window: global erasure floor = magnitude
  kNodeLossFloor,   // window: per-device erasure floor; target = device
  kRadioDeaf,       // window: one device's RX path dead; target = device
  kClockDriftStep,  // one-shot: device clock skews by magnitude ppm
  kBrownOut,        // one-shot: drain one device's store; target = device
  kBrownOutAll,     // one-shot: correlated fleet-wide brown-out
  kHarvestFade,     // window: every harvester scaled by magnitude
  kRfDrought,       // window: harvest source dark fleet-wide
};

[[nodiscard]] const char* kind_name(FaultKind kind);
[[nodiscard]] std::optional<FaultKind> kind_from_name(const std::string& name);

/// One fault. Plain data: micros and doubles, no handles, so actions
/// round-trip through JSON exactly and compare bitwise.
struct FaultAction {
  FaultKind kind = FaultKind::kNoiseRise;
  std::int64_t start_us = 0;
  std::int64_t duration_us = 0;  // 0 for one-shot kinds
  double magnitude = 0.0;        // kind-specific; see FaultKind
  std::int32_t target = -1;      // device index; -1 = fleet-wide/global

  friend bool operator==(const FaultAction&, const FaultAction&) = default;
};

/// A full fault script: what gets thrown at a scenario, in what order.
/// The seed is the campaign's identity (the generator is a pure
/// function of it); the horizon bounds every action.
struct Campaign {
  std::uint64_t seed = 0;
  std::int64_t horizon_us = 0;
  std::vector<FaultAction> actions;

  friend bool operator==(const Campaign&, const Campaign&) = default;
};

struct ChaosConfig {
  int min_actions = 4;
  int max_actions = 12;
  Duration horizon = seconds(120);
  /// Device count of the scenario the campaign targets; per-device
  /// faults draw their target from [0, n_devices).
  int n_devices = 1;
  /// Restrict generation to these kinds; empty = the full vocabulary.
  std::vector<FaultKind> kinds;
};

/// Draw a campaign from `seed`. Pure: same (seed, config) -> identical
/// campaign, independent of any scenario state.
[[nodiscard]] Campaign generate_campaign(std::uint64_t seed,
                                         const ChaosConfig& config);

/// Binding from abstract action targets to one concrete scenario.
/// Everything is optional except the injector: actions whose binding is
/// missing (e.g. kBrownOut with no energy targets) are skipped
/// deterministically rather than failing the campaign.
struct ChaosTargets {
  FaultInjector* faults = nullptr;
  /// Medium node ids of the fleet's devices, campaign target order.
  std::vector<NodeId> device_nodes;
  /// Medium node ids of gateways/receivers — the kApOutage fallback
  /// deafens these (an AP that stops hearing its clients).
  std::vector<NodeId> gateway_nodes;
  /// Real AP stop/start hooks; when set they replace the deafness
  /// fallback for kApOutage.
  std::function<void()> ap_stop;
  std::function<void()> ap_start;
  /// Per-device clock-drift appliers (Sender::apply_clock_drift_ppm).
  std::vector<std::function<void(double)>> clock_drift;
  /// Per-device energy targets; null entries = mains-powered device.
  std::vector<EnergyFaultTarget*> energy;
  /// Where a generated jammer sits.
  Position jammer_position{};
};

/// Arm every applicable action of `campaign` on the injector. Returns
/// the number armed (skipped actions are those with no binding).
std::size_t schedule_campaign(const Campaign& campaign,
                              const ChaosTargets& targets);

// --- JSON fault scripts ------------------------------------------------------
// Schema "wile-chaos-campaign-v1": {schema, seed, horizon_us,
// actions: [{kind, start_us, duration_us, magnitude, target}, ...]}.
// Magnitudes print with %.17g so doubles round-trip exactly.

[[nodiscard]] std::string campaign_to_json(const Campaign& campaign);
/// Parse a campaign; nullopt (never a throw) on malformed input.
[[nodiscard]] std::optional<Campaign> campaign_from_json(const std::string& json);

// --- shrinking ---------------------------------------------------------------

struct ShrinkResult {
  Campaign minimal;
  /// Predicate invocations spent (each is a full scenario replay).
  std::size_t runs = 0;
  std::size_t original_actions = 0;
  /// False when the input campaign itself failed to reproduce (flaky
  /// oracle or wrong scenario binding); minimal is then the input.
  bool reproduced = false;
};

/// ddmin-style delta debugging: find a small action subset for which
/// `reproduces` still returns true. The predicate gets a candidate
/// campaign (same seed/horizon, subset of actions) and must rebuild a
/// fresh scenario per call. 1-minimal when the run budget allows;
/// best-so-far when `max_runs` is exhausted.
ShrinkResult shrink_campaign(
    const Campaign& failing,
    const std::function<bool(const Campaign&)>& reproduces,
    std::size_t max_runs = 256);

// --- repro files -------------------------------------------------------------
// Schema "wile-chaos-repro-v1": the shrunk campaign plus the violation
// it reproduces and the scenario it must be replayed against.

struct ReproFile {
  Campaign campaign;
  std::string scenario;  // fleet label the soak runner understands
  std::uint64_t scenario_seed = 0;
  std::string invariant;
  std::string detail;
  std::int64_t violation_at_us = 0;
  std::uint64_t node = ~std::uint64_t{0};
};

/// Returns false on I/O failure.
bool write_repro_file(const std::string& path, const ReproFile& repro);
[[nodiscard]] std::optional<ReproFile> load_repro_file(const std::string& path);

}  // namespace wile::sim
