// Runtime invariant oracles for chaos campaigns.
//
// A fault campaign is only as good as the properties it checks: a fleet
// that "survives" a brown-out storm while silently double-delivering
// sequences or leaking frame buffers has not survived anything. The
// InvariantMonitor is a registry of cheap oracles swept periodically on
// the simulated clock (plus push-style hooks for event-shaped
// properties), each recording a deterministic Violation on failure:
//
//   InvariantMonitor monitor;
//   monitor.add_monotone_counter("scheduler.events_run",
//                                [&] { return scheduler.events_run(); });
//   monitor.add_check("medium.frame_buffer_leak", [&] { ... });
//   monitor.start(scheduler, msec(250));
//   ... run the campaign ...
//   for (const auto& v : monitor.violations()) ...
//
// The standard catalog (scheduler monotonicity, FrameBuffer leak
// accounting, per-device sequence uniqueness, energy conservation,
// reassembler bounds) is wired over a full fleet by
// Scenario::attach_invariants (wile/scenario.hpp); the monitor itself is
// protocol-agnostic so tests can add bespoke oracles — including
// intentionally-broken ones, which is how the chaos shrinker is
// exercised (sim/chaos.hpp).
//
// Everything is deterministic: sweeps ride the event scheduler, checks
// draw no randomness, and violation records carry the simulated time
// they fired at, so the same campaign trips the same violations at the
// same instants on every run.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/scheduler.hpp"
#include "telemetry/metrics.hpp"
#include "util/units.hpp"

namespace wile::sim {

/// One deterministic violation record. `node` scopes the failure to a
/// device/radio where that makes sense; kFleetWide otherwise.
struct Violation {
  static constexpr std::uint64_t kFleetWide = ~std::uint64_t{0};

  std::string invariant;  // oracle name, e.g. "receiver.sequence_unique"
  std::string detail;     // deterministic human-readable diagnosis
  TimePoint at{};
  std::uint64_t node = kFleetWide;
};

struct InvariantStats {
  std::uint64_t sweeps = 0;
  std::uint64_t checks_run = 0;
  std::uint64_t violations = 0;
  std::uint64_t deliveries_checked = 0;
};

class InvariantMonitor {
 public:
  /// Violation records kept verbatim; beyond this only the counter grows
  /// (a broken invariant inside a tight loop must not OOM the soak).
  static constexpr std::size_t kMaxViolations = 256;
  /// Per-(receiver, device) recent-sequence memory for the uniqueness
  /// oracle. Far beyond the Receiver's own 64-sequence dedup horizon, so
  /// any duplicate the protocol could legally suppress is caught.
  static constexpr std::size_t kSequenceMemory = 4096;

  /// An oracle: returns a diagnosis when the invariant is violated,
  /// nullopt while it holds. Run on every sweep.
  using Check = std::function<std::optional<std::string>()>;

  InvariantMonitor() = default;
  InvariantMonitor(const InvariantMonitor&) = delete;
  InvariantMonitor& operator=(const InvariantMonitor&) = delete;
  ~InvariantMonitor();

  // --- registering oracles ---------------------------------------------------

  void add_check(std::string name, Check check,
                 std::uint64_t node = Violation::kFleetWide);

  /// The value must never decrease between sweeps (scheduler time,
  /// events_run, link epochs across brown-out resumes, ...).
  void add_monotone_counter(std::string name, std::function<std::uint64_t()> fn,
                            std::uint64_t node = Violation::kFleetWide);

  /// The gauge must stay inside [lo, hi] (charge within capacity,
  /// partial-table size within its bound, ...).
  void add_bounded_gauge(std::string name, std::function<double()> fn, double lo,
                         double hi, std::uint64_t node = Violation::kFleetWide);

  // --- push-style hooks ------------------------------------------------------

  /// Per-receiver, per-device sequence uniqueness: a (device, sequence)
  /// pair delivered twice by the same receiver is a dedup failure
  /// (e.g. a brown-out resume retransmitting under a fresh sequence is
  /// fine; the same sequence surfacing twice through the Recovery path
  /// is not). Memory is bounded to the last kSequenceMemory sequences
  /// per (receiver, device).
  void on_delivery(std::uint32_t receiver_key, std::uint32_t device_id,
                   std::uint32_t sequence, TimePoint at);

  /// Record a violation directly (components with their own detection).
  void report(std::string invariant, std::string detail, TimePoint at,
              std::uint64_t node = Violation::kFleetWide);

  // --- sweeping --------------------------------------------------------------

  /// Schedule periodic sweeps on `scheduler` every `period`. The monitor
  /// must be destroyed (or stop() called) before the scheduler is.
  void start(Scheduler& scheduler, Duration period);
  void stop();

  /// Run every registered check once, attributing violations to `now`.
  void run_checks(TimePoint now);

  // --- results ---------------------------------------------------------------

  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }
  [[nodiscard]] bool ok() const { return stats_.violations == 0; }
  [[nodiscard]] const InvariantStats& stats() const { return stats_; }

  /// Bind sweep/violation counters into a telemetry registry under
  /// `prefix` ("invariants.violations", ...).
  void publish_metrics(telemetry::MetricsRegistry& registry,
                       const std::string& prefix = "invariants") const;

 private:
  struct Entry {
    std::string name;
    Check check;
    std::uint64_t node = Violation::kFleetWide;
  };

  /// Bounded recent-sequence set with FIFO eviction.
  struct SeenSequences {
    std::unordered_set<std::uint32_t> set;
    std::deque<std::uint32_t> order;
  };

  void sweep();

  std::vector<Entry> checks_;
  std::vector<Violation> violations_;
  InvariantStats stats_;
  std::unordered_map<std::uint64_t, SeenSequences> seen_;  // (receiver, device)
  Scheduler* scheduler_ = nullptr;
  Duration period_{};
  std::optional<EventId> sweep_event_;
};

}  // namespace wile::sim
