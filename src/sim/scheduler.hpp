// Deterministic discrete-event scheduler.
//
// All protocol machinery in this repository runs against this clock —
// simulated microseconds, no wall time anywhere. Events at equal
// timestamps fire in insertion order, which (together with seeded Rngs)
// makes every run bit-for-bit reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/units.hpp"

namespace wile::sim {

using EventId = std::uint64_t;

class Scheduler {
 public:
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (must not be in the past).
  EventId schedule_at(TimePoint t, std::function<void()> fn);

  /// Schedule `fn` after `delay` from now.
  EventId schedule_in(Duration delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancel a pending event. Cancelling an already-fired or unknown id is
  /// a no-op (timers race with the events that would cancel them).
  void cancel(EventId id);

  /// Pop and run the next event. Returns false if the queue is empty.
  bool run_one();

  /// Run events until the queue is exhausted or the next event lies
  /// beyond `deadline`; the clock then advances to `deadline`.
  void run_until(TimePoint deadline);

  /// Run until no events remain. `max_events` guards against runaway
  /// self-rescheduling loops in tests.
  void run_until_idle(std::uint64_t max_events = 50'000'000);

  [[nodiscard]] std::size_t pending_events() const { return heap_.size() - cancelled_.size(); }

 private:
  struct Entry {
    TimePoint at;
    std::uint64_t seq;  // insertion order tie-break
    EventId id;
    // ordered as a min-heap via operator>
    friend bool operator>(const Entry& a, const Entry& b) {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  bool pop_next(Entry& out);

  TimePoint now_{};
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_map<EventId, std::function<void()>> handlers_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace wile::sim
