// Deterministic discrete-event scheduler.
//
// All protocol machinery in this repository runs against this clock —
// simulated microseconds, no wall time anywhere. Events at equal
// timestamps fire in insertion order, which (together with seeded Rngs)
// makes every run bit-for-bit reproducible.
//
// Fleet-scale design: event records live in a slab of reusable slots,
// addressed by generation-tagged EventIds — no hashing, and no
// allocation at all for callables that fit InlineFunction's inline
// storage (everything that captures `this` plus a few words, i.e.
// nearly every timer in the simulator). Cancellation bumps the slot's
// generation, instantly invalidating the pending record, which is
// dropped lazily.
//
// The pending queue is a hashed hierarchical timing wheel (the kernel-
// timer structure): a wide exact-microsecond level 0 plus geometrically
// coarser upper levels, occupancy bitmaps to find the next pending
// time, and lazy cascading of coarse buckets as the clock approaches
// them. Buckets are intrusive doubly-linked lists threaded through the
// slab slots — scheduling allocates nothing, and cancel unlinks eagerly
// in O(1) (every CSMA backoff and guard timer in the stack schedules-
// then-cancels). Each record cascades at most a handful of times in its
// life, and sub-4ms timers never cascade at all. A comparison-based
// heap costs ~log n mispredicted compares per pop — at fleet scale
// (100k pending timers) the wheel's O(1) paths are what keep the event
// core's cost flat.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/inline_function.hpp"
#include "util/units.hpp"

namespace wile::sim {

/// Generation-tagged event handle: the low 32 bits index a slab slot,
/// the high 32 bits carry the slot's generation at schedule time. A
/// slot's generation is bumped when its event fires or is cancelled, so
/// stale ids can never touch a recycled slot. Id 0 is never issued
/// (generations start at 1).
using EventId = std::uint64_t;

class Scheduler {
 public:
  using EventFn = InlineFunction<void(), 48>;

  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (must not be in the past). The
  /// callable is constructed directly inside the slab slot — the hot
  /// path performs no intermediate moves of the handler.
  template <typename F>
  EventId schedule_at(TimePoint t, F&& fn) {
    if (t < now_) {
      throw std::logic_error("Scheduler: event scheduled in the past");
    }
    std::uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(slot_count_++);
      if ((slot >> kChunkShift) == chunks_.size()) grow_chunk();
    }
    Slot& s = slot_ref(slot);
    const std::uint32_t gen = s.generation;
    s.at = t;
    s.seq = next_seq_++;
    if constexpr (std::is_same_v<std::decay_t<F>, EventFn>) {
      s.fn = std::forward<F>(fn);
    } else {
      s.fn.emplace(std::forward<F>(fn));
    }
    wheel_insert(slot, s);
    ++live_;
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  /// Schedule `fn` after `delay` from now.
  template <typename F>
  EventId schedule_in(Duration delay, F&& fn) {
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Cancel a pending event. Cancelling an already-fired or unknown id is
  /// a no-op (timers race with the events that would cancel them).
  void cancel(EventId id);

  /// Pop and run the next event. Returns false if the queue is empty.
  bool run_one() {
    std::uint32_t slot;
    if (!pop_wheel(~std::uint64_t{0}, slot)) return false;
    fire(slot);
    return true;
  }

  /// Run events until the queue is exhausted or the next event lies
  /// beyond `deadline`; the clock then advances to `deadline`.
  void run_until(TimePoint deadline) {
    const auto bound = static_cast<std::uint64_t>(deadline.us());
    std::uint32_t slot;
    while (pop_wheel(bound, slot)) fire(slot);
    if (now_ < deadline) now_ = deadline;
  }

  /// Run until no events remain. `max_events` guards against runaway
  /// self-rescheduling loops in tests.
  void run_until_idle(std::uint64_t max_events = 50'000'000) {
    std::uint64_t n = 0;
    while (run_one()) {
      if (++n > max_events) {
        throw std::runtime_error(
            "Scheduler: exceeded max_events; runaway event loop?");
      }
    }
  }

  [[nodiscard]] std::size_t pending_events() const { return live_; }

  /// Total events executed since construction (fleet benches report
  /// events/sec from this).
  [[nodiscard]] std::uint64_t events_run() const { return events_run_; }

 public:
  Scheduler() { heads_.fill(kNil); }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Slot {
    std::uint32_t generation = 1;
    // Intrusive wheel-bucket links (slot indices) and filing metadata —
    // written when the slot is scheduled, meaningful only while pending,
    // deliberately left uninitialized at construction (chunks are
    // allocated default-initialized so growing the slab writes only the
    // generation and the empty callback).
    std::uint32_t next;
    std::uint32_t prev;
    std::uint16_t bucket;   // index into heads_
    TimePoint at{};
    std::uint64_t seq;      // insertion order tie-break within a time
    EventFn fn;
  };

  /// Append a chunk to the slot slab (also guards slab exhaustion).
  void grow_chunk();

  /// File a pending slot in the wheel. Level 0 if the time agrees with
  /// the anchor above the low 12 bits (bucket = exact microsecond);
  /// otherwise the level of the highest differing 6-bit block above
  /// them (bucket = that block's value). All records in a bucket share
  /// the blocks above it with the anchor.
  void wheel_insert(std::uint32_t s, Slot& sl) {
    const auto t = static_cast<std::uint64_t>(sl.at.us());
    const std::uint64_t x = t ^ wheel_us_;
    std::uint16_t b;
    if (x < kL0Slots) {
      const auto idx = static_cast<std::size_t>(t & (kL0Slots - 1));
      l0_word_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
      l0_summary_ |= std::uint64_t{1} << (idx >> 6);
      b = static_cast<std::uint16_t>(idx);
    } else {
      const int k = (63 - std::countl_zero(x) - kL0Bits) / kLevelBits + 1;
      const int shift = kL0Bits + kLevelBits * (k - 1);
      const auto idx = static_cast<std::size_t>((t >> shift) & (kSlotsPerLevel - 1));
      slot_mask_[static_cast<std::size_t>(k)] |= std::uint64_t{1} << idx;
      level_mask_ |= static_cast<std::uint16_t>(1u << k);
      b = static_cast<std::uint16_t>(kL0Slots +
                                     static_cast<std::size_t>(k - 1) * kSlotsPerLevel +
                                     idx);
    }
    const std::uint32_t h = heads_[b];
    sl.bucket = b;
    sl.prev = kNil;
    sl.next = h;
    if (h != kNil) slot_ref(h).prev = s;
    heads_[b] = s;
  }

  /// Remove a pending slot from its bucket, clearing occupancy bits if
  /// the bucket empties.
  void wheel_unlink(const Slot& sl) {
    if (sl.prev == kNil) {
      heads_[sl.bucket] = sl.next;
      if (sl.next == kNil) {  // bucket emptied: clear its occupancy bit
        if (sl.bucket < kL0Slots) {
          const std::size_t idx = sl.bucket;
          l0_word_[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
          if (l0_word_[idx >> 6] == 0) {
            l0_summary_ &= ~(std::uint64_t{1} << (idx >> 6));
          }
        } else {
          const std::size_t k = ((sl.bucket - kL0Slots) >> kLevelBits) + 1;
          const std::size_t idx = (sl.bucket - kL0Slots) & (kSlotsPerLevel - 1);
          slot_mask_[k] &= ~(std::uint64_t{1} << idx);
          if (slot_mask_[k] == 0) {
            level_mask_ &= static_cast<std::uint16_t>(~(1u << k));
          }
        }
      }
    } else {
      slot_ref(sl.prev).next = sl.next;
    }
    if (sl.next != kNil) slot_ref(sl.next).prev = sl.prev;
  }

  /// Extract the earliest pending slot with time <= bound_us: walk the
  /// bitmaps to the lowest occupied bucket, cascade coarse buckets down
  /// (advancing the anchor to each bucket's base time) until the
  /// minimum sits at level 0, then unlink the lowest-seq record of that
  /// bucket. Fire order is exactly (time, seq) — the wheel's shape
  /// never affects determinism. Returns false when nothing is pending
  /// at or before the bound.
  bool pop_wheel(std::uint64_t bound_us, std::uint32_t& out) {
    for (;;) {
      if (l0_summary_ != 0) {
        // Earliest pending record is in level 0 (upper levels hold times
        // beyond the anchor's current 4096 us window by construction).
        const auto w = static_cast<std::size_t>(std::countr_zero(l0_summary_));
        const auto bit = static_cast<std::size_t>(std::countr_zero(l0_word_[w]));
        const std::size_t idx = (w << 6) | bit;
        const std::uint64_t base =
            (wheel_us_ & ~static_cast<std::uint64_t>(kL0Slots - 1)) | idx;
        if (base > bound_us) return false;
        // The bucket holds exactly the microsecond `base`, and only live
        // records (cancel unlinks eagerly). Take the lowest seq —
        // insertion order within a timestamp, however records got here.
        std::uint32_t best = heads_[idx];
        std::uint64_t best_seq = slot_ref(best).seq;
        for (std::uint32_t cur = slot_ref(best).next; cur != kNil;) {
          const Slot& sl = slot_ref(cur);
          if (sl.seq < best_seq) {
            best = cur;
            best_seq = sl.seq;
          }
          cur = sl.next;
        }
        wheel_unlink(slot_ref(best));
        wheel_us_ = base;
        out = best;
        return true;
      }
      if (level_mask_ == 0) return false;
      const auto lk = static_cast<std::size_t>(std::countr_zero(level_mask_));
      const auto idx = static_cast<std::size_t>(std::countr_zero(slot_mask_[lk]));
      // The bucket's base time: anchor prefix above block k, block k =
      // idx, lower blocks zero. Every record in the bucket lies in
      // [base, base + span), and — because records never precede the
      // anchor — base never regresses the anchor.
      const int shift = kL0Bits + kLevelBits * (static_cast<int>(lk) - 1);
      const std::uint64_t prefix =
          (shift + kLevelBits >= 64)
              ? 0
              : (wheel_us_ >> (shift + kLevelBits)) << (shift + kLevelBits);
      const std::uint64_t base =
          prefix | (static_cast<std::uint64_t>(idx) << shift);
      if (base > bound_us) return false;
      // Cascade: advance the anchor to the bucket's base and re-file its
      // records. Each now agrees with the anchor through block k, so it
      // lands at a strictly lower level — the loop terminates.
      wheel_us_ = base;
      const auto b = kL0Slots + (lk - 1) * kSlotsPerLevel + idx;
      std::uint32_t cur = heads_[b];
      heads_[b] = kNil;
      slot_mask_[lk] &= ~(std::uint64_t{1} << idx);
      if (slot_mask_[lk] == 0) {
        level_mask_ &= static_cast<std::uint16_t>(~(1u << lk));
      }
      while (cur != kNil) {
        Slot& sl = slot_ref(cur);
        const std::uint32_t nx = sl.next;
        wheel_insert(cur, sl);
        cur = nx;
      }
    }
  }

  /// Advance the clock and run a slot's callback in place (slot storage
  /// is stable — see chunks_), then recycle the slot. The generation is
  /// bumped before invoking, so a handler cancelling its own id is a
  /// no-op.
  void fire(std::uint32_t slot) {
    Slot& s = slot_ref(slot);
    ++s.generation;  // the id is spent before the handler runs
    now_ = s.at;
    ++events_run_;
    s.fn();  // in place; the slot is not yet reusable, so this is safe
    s.fn.reset();
    free_slots_.push_back(slot);
    --live_;
  }

  // Slots live in fixed-size chunks that never move, so callbacks can be
  // invoked in place (no move-out on the fire path) and slab growth
  // never copies existing InlineFunctions.
  static constexpr std::size_t kChunkShift = 8;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;

  Slot& slot_ref(std::uint32_t s) {
    return chunks_[s >> kChunkShift][s & (kChunkSize - 1)];
  }
  [[nodiscard]] const Slot& slot_ref(std::uint32_t s) const {
    return chunks_[s >> kChunkShift][s & (kChunkSize - 1)];
  }

  // Wheel geometry: a wide 12-bit level 0 (4096 one-microsecond buckets,
  // found through a two-level bitmap) so that every timer within ~4 ms —
  // CSMA backoffs, slot boundaries, guard timers, frame airtimes —
  // files directly into its final bucket and never cascades. Nine 6-bit
  // upper levels cover the remaining 52 bits of microseconds — no
  // overflow list and no cap on how far ahead an event may be scheduled.
  static constexpr int kL0Bits = 12;
  static constexpr std::size_t kL0Slots = std::size_t{1} << kL0Bits;
  static constexpr int kLevelBits = 6;
  static constexpr std::size_t kSlotsPerLevel = std::size_t{1} << kLevelBits;
  static constexpr int kUpperLevels = 9;

  TimePoint now_{};
  std::uint64_t next_seq_ = 0;
  // Wheel anchor: <= now_ whenever user code can schedule, and <= every
  // pending record's time, so level math always sees the future.
  std::uint64_t wheel_us_ = 0;
  std::uint64_t l0_summary_ = 0;  // which l0_word_ entries are nonzero
  std::array<std::uint64_t, kL0Slots / 64> l0_word_{};  // level-0 occupancy
  std::uint16_t level_mask_ = 0;  // upper levels with any occupied bucket
  std::array<std::uint64_t, kUpperLevels + 1> slot_mask_{};  // [1..9]
  // Bucket list heads: [0, kL0Slots) level 0, then 64 per upper level.
  std::array<std::uint32_t, kL0Slots + kUpperLevels * kSlotsPerLevel> heads_;
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::size_t slot_count_ = 0;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_ = 0;
  std::uint64_t events_run_ = 0;
};

}  // namespace wile::sim
