// Monitor-mode capture tap: a passive radio that dumps every frame it
// can hear to a pcap sink — the simulated equivalent of running
// tcpdump/Wireshark on a monitor-mode WiFi card next to the testbed.
#pragma once

#include <cstdint>

#include "sim/medium.hpp"
#include "sim/scheduler.hpp"
#include "util/pcap.hpp"

namespace wile::sim {

class CaptureTap : public MediumClient {
 public:
  /// `sink` must outlive the tap. When `include_corrupt` is set, frames
  /// lost to collisions/channel errors are captured too (their payload
  /// bytes are what was sent; a real sniffer would see noise, but for
  /// debugging the intended content is far more useful).
  template <typename PcapSink>
  CaptureTap(Scheduler& scheduler, Medium& medium, Position position, PcapSink& sink,
             bool include_corrupt = false)
      : scheduler_(scheduler),
        include_corrupt_(include_corrupt),
        write_([&sink](TimePoint t, BytesView frame) { sink.write(t, frame); }) {
    node_id_ = medium.attach(this, position);
  }

  [[nodiscard]] NodeId node_id() const { return node_id_; }
  [[nodiscard]] std::uint64_t frames_captured() const { return frames_; }
  [[nodiscard]] std::uint64_t corrupt_seen() const { return corrupt_; }

  void on_frame(const RxFrame& frame) override {
    ++frames_;
    write_(scheduler_.now(), frame.mpdu);
  }

  void on_corrupt_frame(const RxFrame& frame, bool) override {
    ++corrupt_;
    if (include_corrupt_) {
      ++frames_;
      write_(scheduler_.now(), frame.mpdu);
    }
  }

  [[nodiscard]] bool rx_enabled() const override { return true; }

 private:
  Scheduler& scheduler_;
  bool include_corrupt_;
  std::function<void(TimePoint, BytesView)> write_;
  NodeId node_id_{};
  std::uint64_t frames_ = 0;
  std::uint64_t corrupt_ = 0;
};

}  // namespace wile::sim
