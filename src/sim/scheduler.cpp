#include "sim/scheduler.hpp"

namespace wile::sim {

void Scheduler::grow_chunk() {
  if (chunks_.size() >= ((std::uint64_t{1} << 32) >> kChunkShift)) {
    throw std::runtime_error("Scheduler: slot slab exhausted");
  }
  // Default-init (not value-init): a fresh chunk writes only each slot's
  // generation and empty callback, not 100+ zero bytes per slot.
  chunks_.emplace_back(new Slot[kChunkSize]);
}

void Scheduler::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slot_count_) return;  // never issued
  Slot& s = slot_ref(slot);
  if (s.generation != gen || !s.fn) {
    return;  // already fired or already cancelled
  }
  wheel_unlink(s);
  ++s.generation;
  s.fn.reset();
  free_slots_.push_back(slot);
  --live_;
}

}  // namespace wile::sim
