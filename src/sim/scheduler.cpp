#include "sim/scheduler.hpp"

#include <stdexcept>

namespace wile::sim {

EventId Scheduler::schedule_at(TimePoint t, std::function<void()> fn) {
  if (t < now_) throw std::logic_error("Scheduler: event scheduled in the past");
  const EventId id = next_id_++;
  heap_.push(Entry{t, next_seq_++, id});
  handlers_.emplace(id, std::move(fn));
  return id;
}

void Scheduler::cancel(EventId id) {
  if (handlers_.erase(id) > 0) cancelled_.insert(id);
}

bool Scheduler::pop_next(Entry& out) {
  while (!heap_.empty()) {
    Entry e = heap_.top();
    heap_.pop();
    if (cancelled_.erase(e.id) > 0) continue;  // lazily dropped
    out = e;
    return true;
  }
  return false;
}

bool Scheduler::run_one() {
  Entry e;
  if (!pop_next(e)) return false;
  now_ = e.at;
  auto it = handlers_.find(e.id);
  // pop_next already filtered cancelled ids, so the handler must exist.
  auto fn = std::move(it->second);
  handlers_.erase(it);
  fn();
  return true;
}

void Scheduler::run_until(TimePoint deadline) {
  for (;;) {
    Entry e;
    if (!pop_next(e)) break;
    if (e.at > deadline) {
      // Put it back; it fires after the horizon.
      heap_.push(e);
      break;
    }
    now_ = e.at;
    auto it = handlers_.find(e.id);
    auto fn = std::move(it->second);
    handlers_.erase(it);
    fn();
  }
  if (now_ < deadline) now_ = deadline;
}

void Scheduler::run_until_idle(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (run_one()) {
    if (++n > max_events) {
      throw std::runtime_error("Scheduler: exceeded max_events; runaway event loop?");
    }
  }
}

}  // namespace wile::sim
