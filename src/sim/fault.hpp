// Scriptable, time-windowed fault injection for the simulator.
//
// The paper's energy story (Table 1, Fig. 3/4) assumes a clean channel
// and an always-up AP. Real deployments of unattended IoT devices see
// none of that: microwave ovens raise the noise floor, duty-cycled
// jammers shred frames, APs reboot for firmware updates, radios go deaf.
// The FaultInjector drives such conditions through the existing
// Scheduler/Medium without touching any protocol code:
//
//   * channel impairments — noise-floor rise, blanket PER multiplier,
//     and a jammer node with a configurable duty cycle;
//   * node faults — radio deafness (RX blackout) for any attached node;
//   * energy starvation — scheduled brown-outs, harvest-rate fades and
//     fleet-wide RF droughts against any attached EnergyFaultTarget
//     (the Sender's power::EnergyGovernor registers itself here);
//   * arbitrary component faults via the generic window()/at()
//     primitives, e.g. AP crash-and-reboot or a gateway uplink kill:
//
//       FaultInjector fi{scheduler, medium, Rng{7}};
//       fi.window(TimePoint{seconds(60)}, seconds(30),
//                 [&] { ap.stop(); }, [&] { ap.start(); });
//       fi.at(TimePoint{seconds(90)}, [&] { gateway.kill_uplink(); });
//
// Everything is deterministic for a given seed; windows are scheduled up
// front, so a scenario is a pure function of (script, seeds).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "sim/medium.hpp"
#include "sim/scheduler.hpp"
#include "telemetry/metrics.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace wile::sim {

/// A dumb interferer: transmits undecodable garbage bursts with the given
/// duty cycle. Anything overlapping a burst and audible above the
/// carrier-sense floor collides; CSMA nodes additionally defer to it.
struct JammerConfig {
  Position position{};
  double tx_power_dbm = 20.0;
  /// Burst cadence: one burst of `duty_cycle * period` airtime per period.
  Duration period = msec(10);
  double duty_cycle = 0.1;  // clamped to [0, 0.95]
  /// Size of the garbage MPDU receivers see (affects only parsing cost).
  std::size_t frame_bytes = 64;
};

struct FaultStats {
  std::uint64_t windows_scheduled = 0;
  std::uint64_t windows_started = 0;
  std::uint64_t windows_ended = 0;
  /// Gauge: windows currently open (the ISSUE's fault_windows_active).
  std::uint64_t fault_windows_active = 0;
  std::uint64_t events_fired = 0;  // one-shot at() faults
  std::uint64_t jammer_bursts = 0;
  /// Energy faults: scheduled brown-outs delivered, fade windows opened.
  std::uint64_t brown_outs_injected = 0;
  std::uint64_t harvest_fades = 0;
  /// Script-validation warning: typed windows of the same kind whose
  /// intervals overlap on the same target (usually a script bug — the
  /// faults stack, which is rarely what the author meant). Scheduling
  /// still proceeds; chaos campaigns overlap deliberately.
  std::uint64_t windows_overlapping = 0;
};

/// Implemented by intermittent power supplies (power::EnergyGovernor).
/// Declared here — not in power/ — because wile_power links wile_sim,
/// not the reverse; the injector drives energy faults through this
/// interface without seeing the capacitor model.
class EnergyFaultTarget {
 public:
  virtual ~EnergyFaultTarget() = default;
  /// Drain the store instantly; the device browns out now.
  virtual void fault_brown_out() = 0;
  /// Scale the harvest rate by `scale` (stacking multiplicatively with
  /// other active fades) until the matching pop.
  virtual void fault_harvest_push(double scale) = 0;
  virtual void fault_harvest_pop(double scale) = 0;
};

class FaultInjector {
 public:
  FaultInjector(Scheduler& scheduler, Medium& medium, Rng rng);
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // --- generic primitives ----------------------------------------------------

  /// Open a fault window: `on_start` fires at `start`, `on_end` at
  /// `start + duration`. Either callback may be empty. Throws
  /// std::invalid_argument when duration <= 0 (end would not follow
  /// start) — validated at schedule time, not when the window fires.
  void window(TimePoint start, Duration duration, std::function<void()> on_start,
              std::function<void()> on_end);

  /// One-shot fault event (e.g. a sender clock-drift step).
  void at(TimePoint when, std::function<void()> fn);

  // --- channel impairments ---------------------------------------------------

  /// Raise the effective noise floor by `delta_db` for the window.
  /// Overlapping windows stack additively.
  void noise_floor_rise(TimePoint start, Duration duration, double delta_db);

  /// Multiply every packet error rate by `multiplier` for the window.
  /// Overlapping windows stack multiplicatively.
  void per_multiplier(TimePoint start, Duration duration, double multiplier);

  /// Impose an SNR-independent baseline loss probability for the window
  /// (drops `p` of frames even on an otherwise-clean link — the knob FEC
  /// tests use to inject exact loss). Overlapping windows stack as
  /// independent erasure processes: 1 - (1-a)(1-b).
  void per_floor(TimePoint start, Duration duration, double p);

  /// Per-device erasure floor for the window: only frames arriving at
  /// `node` see the extra loss (one sensor behind a forklift). Stacks
  /// with other per-node windows the same way the global floor does.
  void per_floor(TimePoint start, Duration duration, double p, NodeId node);

  /// Attach a jammer node that bursts for the window. Returns its NodeId
  /// (useful for carrier-sense assertions). The jammer object lives as
  /// long as the injector.
  NodeId jammer(TimePoint start, Duration duration, JammerConfig config);

  // --- node faults -----------------------------------------------------------

  /// Block all frame delivery to `node` for the window (radio deafness;
  /// the node's transmit path still works).
  void radio_deaf(TimePoint start, Duration duration, NodeId node);

  // --- energy starvation faults ----------------------------------------------

  /// Register an intermittent power supply with the injector. Fleet-wide
  /// energy faults (harvest_fade/rf_drought with no explicit target) hit
  /// every registered target, in registration order. The target must
  /// outlive the injector or the scheduled fault times.
  void attach_energy_target(EnergyFaultTarget* target);
  [[nodiscard]] std::size_t energy_targets() const { return energy_targets_.size(); }

  /// Scheduled brown-out: drain one device's store at `when` (a shorting
  /// capacitor, a load transient the harvester can't ride through).
  void brown_out(TimePoint when, EnergyFaultTarget& target);
  /// Correlated fleet-wide brown-out at `when` (mains-coupled harvesters
  /// losing their source simultaneously).
  void brown_out_all(TimePoint when);

  /// Scale every registered harvester's input by `scale` for the window
  /// (a person standing in the RF path, a seasonal duty-cycle change).
  /// Overlapping fades stack multiplicatively and unwind exactly.
  void harvest_fade(TimePoint start, Duration duration, double scale);
  /// Same, one device only.
  void harvest_fade(TimePoint start, Duration duration, double scale,
                    EnergyFaultTarget& target);

  /// Fleet-wide RF drought: the harvest source goes dark for the window
  /// (an AP reboot kills every rectenna feeding off it). Equivalent to
  /// harvest_fade(start, duration, 0.0).
  void rf_drought(TimePoint start, Duration duration);

  [[nodiscard]] const FaultStats& stats() const { return stats_; }
  [[nodiscard]] bool any_active() const { return stats_.fault_windows_active > 0; }

  /// Bind the fault counters into a telemetry registry under `prefix`
  /// ("fault.windows_started", ...); stats() stays the same slots.
  void publish_metrics(telemetry::MetricsRegistry& registry,
                       const std::string& prefix = "fault") const;

 private:
  class Jammer;

  /// Typed-window bookkeeping for the overlap warning. The key packs the
  /// fault kind with the target node (kGlobalTarget for fleet-wide
  /// faults); a new window overlapping any scheduled window with the
  /// same key bumps stats_.windows_overlapping once.
  enum class WindowKind : std::uint32_t {
    kNoise,
    kPerMultiplier,
    kPerFloor,
    kJammer,
    kRadioDeaf,
    kHarvestFade,
  };
  static constexpr std::uint32_t kGlobalTarget = 0xFFFF'FFFF;
  struct TrackedWindow {
    std::uint64_t key = 0;
    std::int64_t start_us = 0;
    std::int64_t end_us = 0;
  };
  void track_window(WindowKind kind, std::uint32_t target, TimePoint start,
                    Duration duration);

  Scheduler& scheduler_;
  Medium& medium_;
  Rng rng_;
  FaultStats stats_;
  std::vector<EventId> pending_;  // cancelled on destruction
  std::vector<std::unique_ptr<Jammer>> jammers_;
  std::vector<EnergyFaultTarget*> energy_targets_;
  std::vector<TrackedWindow> tracked_;
};

}  // namespace wile::sim
