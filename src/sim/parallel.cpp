#include "sim/parallel.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

namespace wile::sim {

std::uint64_t SpinBarrier::arrive_and_wait() {
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
    // Last arrival flips the generation; resetting the count first is
    // safe because waiters only watch the generation.
    arrived_.store(0, std::memory_order_relaxed);
    generation_.store(gen + 1, std::memory_order_release);
    return 0;
  }
  std::uint64_t spins = 0;
  while (generation_.load(std::memory_order_acquire) == gen) {
    ++spins;
    std::this_thread::yield();
  }
  return spins;
}

ShardRouter::ShardRouter(std::size_t shards, double x0_m, double x1_m)
    : shards_(shards), x0_m_(x0_m) {
  if (shards == 0) throw std::invalid_argument("ShardRouter: zero shards");
  if (!(x1_m > x0_m)) throw std::invalid_argument("ShardRouter: empty extent");
  stripe_m_ = (x1_m - x0_m) / static_cast<double>(shards);
  queues_.reserve(shards * shards);
  for (std::size_t i = 0; i < shards * shards; ++i) {
    queues_.push_back(std::make_unique<SpscQueue<BoundaryTx>>());
  }
  seq_.assign(shards, 0);
}

std::size_t ShardRouter::shard_of(double x_m) const {
  const double rel = (x_m - x0_m_) / stripe_m_;
  if (rel <= 0.0) return 0;  // boundary nodes: x exactly on an edge goes right
  const auto idx = static_cast<std::size_t>(rel);
  return std::min(idx, shards_ - 1);
}

std::pair<double, double> ShardRouter::span(std::size_t shard) const {
  return {x0_m_ + stripe_m_ * static_cast<double>(shard),
          x0_m_ + stripe_m_ * static_cast<double>(shard + 1)};
}

void ShardRouter::route(std::size_t src, const RemoteTx& tx) {
  // Every stripe the audible circle touches mirrors the transmission —
  // a loud frame near a thin stripe can span 3+ shards.
  const std::size_t lo = shard_of(tx.origin.x_m - tx.audible_range_m);
  const std::size_t hi = shard_of(tx.origin.x_m + tx.audible_range_m);
  const std::uint64_t seq = seq_[src]++;
  for (std::size_t dst = lo; dst <= hi; ++dst) {
    if (dst == src) continue;
    queue(src, dst).push(
        BoundaryTx{tx, static_cast<std::uint32_t>(src), seq});
  }
}

std::size_t ShardRouter::drain(std::size_t dst, std::vector<BoundaryTx>& out) {
  std::size_t n = 0;
  for (std::size_t src = 0; src < shards_; ++src) {
    if (src == dst) continue;
    n += queue(src, dst).drain_into(out);
  }
  // Canonical merge order: thread scheduling decides nothing. Per-queue
  // FIFO already orders each origin; the sort interleaves origins the
  // same way every run.
  std::sort(out.begin(), out.end(), [](const BoundaryTx& a, const BoundaryTx& b) {
    if (a.tx.start != b.tx.start) return a.tx.start < b.tx.start;
    if (a.origin_shard != b.origin_shard) return a.origin_shard < b.origin_shard;
    return a.seq < b.seq;
  });
  return n;
}

std::uint64_t ShardRouter::routed_from(std::size_t shard) const {
  std::uint64_t n = 0;
  for (std::size_t dst = 0; dst < shards_; ++dst) {
    n += queues_[shard * shards_ + dst]->pushed();
  }
  return n;
}

std::uint64_t ShardRouter::drained_by(std::size_t shard) const {
  std::uint64_t n = 0;
  for (std::size_t src = 0; src < shards_; ++src) {
    n += queues_[src * shards_ + shard]->popped();
  }
  return n;
}

ParallelEngine::ParallelEngine(std::vector<Shard> shards, double x0_m, double x1_m,
                               Duration window, unsigned threads)
    : shards_(std::move(shards)),
      router_(shards_.size(), x0_m, x1_m),
      window_(window),
      threads_(std::min<unsigned>(std::max(1u, threads),
                                  static_cast<unsigned>(shards_.size()))),
      barrier_(threads_),
      stats_(shards_.size()),
      drain_scratch_(threads_) {
  if (shards_.empty()) throw std::invalid_argument("ParallelEngine: no shards");
  if (window_.count() <= 0) throw std::invalid_argument("ParallelEngine: zero window");
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Medium* medium = shards_[i].medium;
    const auto [s0, s1] = router_.span(i);
    medium->set_owned_span(s0, s1);
    medium->set_boundary_hook(
        [this, i](const RemoteTx& tx) { router_.route(i, tx); });
  }
}

void ParallelEngine::run_until(TimePoint deadline) {
  const TimePoint start = now();
  if (deadline <= start) return;
  abort_.store(false, std::memory_order_relaxed);
  error_ = nullptr;

  if (threads_ == 1) {
    worker_loop(0, start, deadline);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(threads_ - 1);
    for (unsigned t = 1; t < threads_; ++t) {
      workers.emplace_back([this, t, start, deadline] { worker_loop(t, start, deadline); });
    }
    worker_loop(0, start, deadline);
    for (auto& w : workers) w.join();
  }
  if (error_) std::rethrow_exception(error_);
}

void ParallelEngine::worker_loop(unsigned thread_idx, TimePoint start,
                                 TimePoint deadline) {
  // Static shard ownership: thread t runs shards {i : i % T == t}. The
  // assignment never changes mid-run, which is what keeps every SPSC
  // queue single-producer (src thread) and single-consumer (dst thread).
  std::vector<std::size_t> owned;
  for (std::size_t i = thread_idx; i < shards_.size(); i += threads_) {
    owned.push_back(i);
  }
  std::vector<BoundaryTx>& inbox = drain_scratch_[thread_idx];

  TimePoint window_end = start;
  while (window_end < deadline) {
    window_end = std::min(window_end + window_, deadline);
    if (!abort_.load(std::memory_order_relaxed)) {
      try {
        // Phase 1: run every owned shard to the window boundary. All
        // boundary pushes for this window happen here.
        for (const std::size_t i : owned) {
          shards_[i].scheduler->run_until(window_end);
          ++stats_[i].windows;
        }
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mutex_);
          if (!error_) error_ = std::current_exception();
        }
        // Keep arriving at barriers so the other threads drain out of
        // the window loop instead of deadlocking.
        abort_.store(true, std::memory_order_release);
      }
    }
    std::uint64_t stalls = barrier_.arrive_and_wait();

    if (!abort_.load(std::memory_order_acquire)) {
      try {
        // Phase 2: drain and inject. The barrier above guarantees every
        // producer finished its window; the barrier below guarantees no
        // producer starts the next window until every inbox is empty —
        // so each drain sees exactly the windows-so-far traffic, a
        // thread-count-independent set.
        for (const std::size_t i : owned) {
          inbox.clear();
          const std::size_t n = router_.drain(i, inbox);
          stats_[i].boundary_tx_in += n;
          for (const BoundaryTx& btx : inbox) {
            shards_[i].medium->inject_remote(btx.tx);
          }
        }
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mutex_);
          if (!error_) error_ = std::current_exception();
        }
        abort_.store(true, std::memory_order_release);
      }
    }
    stalls += barrier_.arrive_and_wait();
    // Stalls land on this thread's lowest-numbered shard (== thread_idx
    // under the modulo assignment); see ShardStats.
    stats_[owned.front()].barrier_stalls += stalls;
  }

  // Final bookkeeping once per run: out-counts come from the router's
  // push counters (exact now that all producers are done).
  for (const std::size_t i : owned) {
    stats_[i].boundary_tx_out = router_.routed_from(i);
  }
}

std::uint64_t ParallelEngine::total_events_run() const {
  std::uint64_t n = 0;
  for (const Shard& s : shards_) n += s.scheduler->events_run();
  return n;
}

Medium::Stats ParallelEngine::total_medium_stats() const {
  Medium::Stats total;
  for (const Shard& s : shards_) {
    const Medium::Stats& m = s.medium->stats();
    total.transmissions += m.transmissions;
    total.deliveries += m.deliveries;
    total.collision_losses += m.collision_losses;
    total.channel_losses += m.channel_losses;
  }
  return total;
}

TimePoint ParallelEngine::now() const {
  TimePoint t{};
  for (const Shard& s : shards_) t = std::max(t, s.scheduler->now());
  return t;
}

}  // namespace wile::sim
