// Simulated WiFi access point (the paper's Google WiFi, §5.1).
//
// Implements everything the paper's connection-cost accounting relies
// on, with real frames end to end:
//   * periodic beacons with TIM,
//   * probe / open-system auth / association responders,
//   * WPA2-PSK authenticator (genuine PBKDF2 / PRF-384 / HMAC-SHA1 MICs,
//     GTK delivery via AES Key Wrap),
//   * CCMP-protected data path after the handshake,
//   * DHCP server and ARP responder (the "7 higher-layer frames"),
//   * 802.11 power-save buffering: TIM bits, PS-Poll service, more-data.
//
// The AP is mains powered, so it carries no power timeline — only the
// IoT-device side is metered, as in the paper.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "dot11/ccmp.hpp"
#include "dot11/eapol.hpp"
#include "dot11/frame.hpp"
#include "net/arp.hpp"
#include "net/dhcp.hpp"
#include "net/udp.hpp"
#include "sim/csma.hpp"
#include "sim/medium.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace wile::ap {

struct AccessPointConfig {
  std::string ssid = "GoogleWifi";
  /// Empty passphrase = open network (no RSN, no handshake).
  std::string passphrase = "hotnets2019";
  MacAddress bssid = MacAddress::from_seed(0xA9);
  std::uint8_t channel = 6;
  std::uint16_t beacon_interval_tu = 100;  // 102.4 ms
  std::uint8_t dtim_period = 1;

  net::Ipv4Address ip{192, 168, 86, 1};
  net::Ipv4Address dhcp_pool_start{192, 168, 86, 20};
  std::uint32_t dhcp_lease_seconds = 86'400;

  /// Server-side processing latencies. Fig. 3a shows "fairly long wait
  /// times for network layer messages such as DHCP"; these reproduce
  /// that plateau.
  Duration auth_processing = msec(3);
  Duration assoc_processing = msec(5);
  Duration eapol_processing = msec(15);
  Duration dhcp_offer_delay = msec(200);
  Duration dhcp_ack_delay = msec(150);
  Duration arp_reply_delay = msec(45);

  phy::WifiRate mgmt_rate = phy::WifiRate::G6;
  phy::WifiRate data_rate = phy::WifiRate::Mcs7;
  double tx_power_dbm = 20.0;
};

/// Counters exposed for tests and the frame-count experiment (E5).
struct ApStats {
  std::uint64_t beacons_sent = 0;
  std::uint64_t probe_responses = 0;
  std::uint64_t auth_responses = 0;
  std::uint64_t assoc_responses = 0;
  std::uint64_t handshakes_completed = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t data_frames_received = 0;
  std::uint64_t eapol_frames_received = 0;
  std::uint64_t dhcp_acks_sent = 0;
  std::uint64_t arp_replies_sent = 0;
  std::uint64_t uplink_udp_datagrams = 0;
  std::uint64_t ps_poll_received = 0;
  std::uint64_t buffered_frames_delivered = 0;
  /// Crash-and-reboot accounting: stop() calls observed.
  std::uint64_t outages = 0;
};

class AccessPoint : public sim::MediumClient {
 public:
  AccessPoint(sim::Scheduler& scheduler, sim::Medium& medium, sim::Position position,
              AccessPointConfig config, Rng rng);

  /// Begin beaconing (also restarts after stop()). Without start() the AP
  /// still answers probes (it is just silent between them), which some
  /// tests exploit.
  void start();

  /// Take the AP down — power cut or crash. Beaconing stops, the radio
  /// goes deaf and mute, queued frames are discarded, and all
  /// association/handshake/lease state is lost, exactly as a reboot
  /// would lose it. start() brings it back with fresh state; clients must
  /// re-associate from scratch.
  void stop();

  [[nodiscard]] bool running() const { return !down_; }

  [[nodiscard]] sim::NodeId node_id() const { return node_id_; }
  [[nodiscard]] const AccessPointConfig& config() const { return config_; }
  [[nodiscard]] const ApStats& stats() const { return stats_; }

  /// Bind AP counters into a telemetry registry under `prefix`
  /// (canonically "node.<id>.ap"); stats() keeps the same slots.
  void publish_metrics(telemetry::MetricsRegistry& registry,
                       const std::string& prefix) const;

  /// Uplink sink: called for every decrypted/deencapsulated UDP datagram
  /// a client sends through the AP.
  using UplinkHandler = std::function<void(
      const MacAddress& sta, const net::Ipv4Header& ip, const net::UdpDatagram& udp)>;
  void set_uplink_handler(UplinkHandler handler) { uplink_ = std::move(handler); }

  /// Queue a downlink UDP datagram toward an associated client. Respects
  /// power save: buffered + TIM-advertised if the client sleeps.
  /// Returns false if the STA is unknown.
  bool send_downlink_udp(const MacAddress& sta, net::Ipv4Address src_ip,
                         std::uint16_t src_port, std::uint16_t dst_port, BytesView payload);

  /// True once the given STA is associated (and through the handshake if
  /// the network is protected).
  [[nodiscard]] bool client_ready(const MacAddress& sta) const;
  [[nodiscard]] std::optional<net::Ipv4Address> client_ip(const MacAddress& sta) const;

  // --- sim::MediumClient -----------------------------------------------------
  void on_frame(const sim::RxFrame& frame) override;
  [[nodiscard]] bool rx_enabled() const override;

 private:
  enum class ClientState {
    Authenticated,   // passed open-system auth
    Associated,      // assoc response sent; handshake pending if RSN
    HandshakeM1,     // M1 sent, waiting for M2
    HandshakeM3,     // M3 sent, waiting for M4
    Ready,           // open network associated, or RSN handshake done
  };

  struct Client {
    ClientState state = ClientState::Authenticated;
    std::uint16_t aid = 0;
    std::array<std::uint8_t, 32> anonce{};
    crypto::PairwiseTransientKey ptk{};
    std::uint64_t eapol_replay = 0;
    std::unique_ptr<dot11::CcmpSession> ccmp;
    bool power_save = false;
    std::deque<Bytes> buffered_llc;  // downlink LLC payloads awaiting PS-Poll
    std::optional<net::Ipv4Address> lease;
    std::optional<net::Ipv4Address> offered;  // stable across DISCOVER retries
  };

  void send_beacon();
  void schedule_next_beacon();
  void send_ack_after_sifs(const MacAddress& to);
  void send_mgmt(dot11::MgmtSubtype subtype, const MacAddress& da, BytesView body,
                 bool expect_ack);
  void send_eapol(const MacAddress& da, const dot11::EapolKeyFrame& frame);
  void send_downlink_llc(const MacAddress& da, Bytes llc, bool more_data);
  void deliver_or_buffer(const MacAddress& da, Bytes llc);

  void handle_probe_request(const dot11::ParsedMpdu& mpdu);
  void handle_auth(const dot11::ParsedMpdu& mpdu);
  void handle_assoc_request(const dot11::ParsedMpdu& mpdu);
  void handle_data(const dot11::ParsedMpdu& mpdu);
  void handle_eapol(const MacAddress& sta, BytesView eapol_bytes);
  void handle_uplink_ip(const MacAddress& sta, BytesView packet);
  void handle_dhcp(const MacAddress& sta, const net::DhcpMessage& msg);
  void handle_arp(const MacAddress& sta, const net::ArpPacket& arp);
  void handle_ps_poll(const dot11::PsPollFrame& poll);
  void update_power_save(const MacAddress& sta, bool ps);

  Client& client(const MacAddress& sta);
  [[nodiscard]] net::Ipv4Address allocate_ip(const MacAddress& sta);
  std::uint16_t next_seq() { return seq_++ & 0x0fff; }

  sim::Scheduler& scheduler_;
  sim::Medium& medium_;
  AccessPointConfig config_;
  Rng rng_;
  sim::NodeId node_id_;
  std::unique_ptr<sim::Csma> csma_;

  Bytes pmk_;                         // PBKDF2(passphrase, ssid)
  std::array<std::uint8_t, 16> gtk_{};
  dot11::InfoElement rsn_ie_;
  bool beaconing_ = false;
  bool down_ = false;
  std::optional<sim::EventId> beacon_timer_;
  std::uint16_t seq_ = 0;
  std::uint16_t next_aid_ = 1;
  std::uint32_t next_host_ = 0;

  std::unordered_map<MacAddress, Client> clients_;
  std::unordered_map<std::uint32_t, MacAddress> ip_to_mac_;
  UplinkHandler uplink_;
  ApStats stats_;
};

}  // namespace wile::ap
