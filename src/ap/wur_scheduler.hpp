// AP-originated 802.11ba wake-up frame scheduling.
//
// The access point (mains-powered, so no power timeline here) owns the
// wake cadence for a fleet of WUR companions: unicast wakes round-robin
// over the fleet's 12-bit WUR IDs, or a periodic group wake that fires
// every member at once. Wake-up frames are ordinary medium traffic —
// they contend through the shared CSMA/DCF path like any broadcast
// (their 20 us legacy preamble is exactly what makes normal stations
// defer to them), collide with Wi-LE beacons, and cross shard
// boundaries as RemoteTx phantoms with no special handling.
#pragma once

#include <cstdint>
#include <vector>

#include "phy/wur_phy.hpp"
#include "sim/csma.hpp"
#include "sim/medium.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace wile::ap {

struct WurSchedulerConfig {
  phy::WurRate rate = phy::WurRate::kHigh;
  /// Wake frames go out at AP power: the OOK envelope detector is far
  /// less sensitive than the main radio, so the downlink wake needs the
  /// link budget the uplink beacon does not.
  double tx_power_dbm = 20.0;
  /// Back-to-back repeats of every wake frame (same sequence number, so
  /// companions dedupe; repeats only buy delivery probability).
  int repeats = 1;
};

class WurScheduler : public sim::MediumClient {
 public:
  using Config = WurSchedulerConfig;

  WurScheduler(sim::Scheduler& scheduler, sim::Medium& medium, sim::Position position,
               Rng rng, Config config = {});

  /// One-shot unicast wake of a single companion receiver.
  void wake(std::uint16_t wur_id);
  /// One-shot multicast wake of every member of `group_id`.
  void wake_group(std::uint16_t group_id);

  /// Fixed-cadence round robin over a fleet: one unicast wake every
  /// `sweep_period / ids.size()`, first one gap in. The cadence is
  /// anchored to absolute times (schedule_at), so CSMA deferral of one
  /// frame never skews when the next is queued — the polling rate each
  /// device experiences is sweep_period exactly.
  void start_round_robin(std::vector<std::uint16_t> ids, Duration sweep_period);

  /// Periodic group wake every `period`, first one period in.
  void start_group_cadence(std::uint16_t group_id, Duration period);

  /// Cancel any running cadence (in-flight frames still leave the antenna).
  void stop();

  [[nodiscard]] std::uint64_t wakes_sent() const { return wakes_sent_; }
  [[nodiscard]] Duration tx_airtime_total() const { return tx_airtime_total_; }
  [[nodiscard]] sim::NodeId node_id() const { return node_id_; }
  [[nodiscard]] const Config& config() const { return config_; }

  // --- sim::MediumClient -----------------------------------------------------
  /// Transmit-only: the WUR downlink has no receive path at the AP.
  void on_frame(const sim::RxFrame&) override {}
  [[nodiscard]] bool rx_enabled() const override { return false; }

 private:
  void send_wake(phy::WakeUpFrame frame);
  void schedule_next_tick();

  sim::Scheduler& scheduler_;
  sim::Medium& medium_;
  Config config_;
  sim::NodeId node_id_;
  std::unique_ptr<sim::Csma> csma_;

  // Cadence state: a round robin and a group cadence are mutually
  // exclusive; starting either (or stop()) strands the previous
  // campaign's scheduled ticks via the epoch.
  std::uint64_t campaign_epoch_ = 0;
  std::vector<std::uint16_t> rr_ids_;
  std::size_t rr_index_ = 0;
  std::uint16_t cadence_group_ = 0;
  Duration tick_gap_{};
  TimePoint next_tick_at_{};

  std::uint8_t seq_ = 0;
  std::uint64_t wakes_sent_ = 0;
  Duration tx_airtime_total_{};
};

}  // namespace wile::ap
