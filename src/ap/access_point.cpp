#include "ap/access_point.hpp"

#include <algorithm>

#include "crypto/pbkdf2.hpp"
#include "net/llc.hpp"
#include "util/log.hpp"

namespace wile::ap {

using dot11::FrameControl;
using dot11::MgmtSubtype;

AccessPoint::AccessPoint(sim::Scheduler& scheduler, sim::Medium& medium,
                         sim::Position position, AccessPointConfig config, Rng rng)
    : scheduler_(scheduler),
      medium_(medium),
      config_(std::move(config)),
      rng_(rng),
      rsn_ie_(dot11::make_rsn_psk_ccmp_ie()) {
  node_id_ = medium_.attach(this, position);
  sim::CsmaConfig csma_cfg;
  csma_cfg.tx_power_dbm = config_.tx_power_dbm;
  csma_ = std::make_unique<sim::Csma>(scheduler_, medium_, node_id_, rng_.fork(), csma_cfg);
  if (!config_.passphrase.empty()) {
    pmk_ = crypto::wpa2_psk(config_.passphrase, config_.ssid);
    for (auto& b : gtk_) b = static_cast<std::uint8_t>(rng_.below(256));
  }
}

void AccessPoint::start() {
  down_ = false;
  if (beaconing_) return;
  beaconing_ = true;
  schedule_next_beacon();
}

void AccessPoint::stop() {
  if (down_) return;
  down_ = true;
  beaconing_ = false;
  if (beacon_timer_) {
    scheduler_.cancel(*beacon_timer_);
    beacon_timer_.reset();
  }
  ++stats_.outages;
  csma_->drop_queued();
  // A reboot loses all volatile state: associations, PTKs, PS buffers,
  // leases. Clients that think they are still associated will find their
  // frames ignored and must re-associate.
  clients_.clear();
  ip_to_mac_.clear();
}

bool AccessPoint::rx_enabled() const { return !down_ && !medium_.transmitting(node_id_); }

void AccessPoint::schedule_next_beacon() {
  const Duration interval{static_cast<std::int64_t>(config_.beacon_interval_tu) * 1024};
  beacon_timer_ = scheduler_.schedule_in(interval, [this] {
    beacon_timer_.reset();
    if (!beaconing_) return;
    send_beacon();
    schedule_next_beacon();
  });
}

void AccessPoint::send_beacon() {
  dot11::Beacon beacon;
  beacon.timestamp_us = static_cast<std::uint64_t>(scheduler_.now().us());
  beacon.beacon_interval_tu = config_.beacon_interval_tu;
  beacon.capability = dot11::Capability::kEss | dot11::Capability::kShortSlot;
  if (!config_.passphrase.empty()) beacon.capability |= dot11::Capability::kPrivacy;

  beacon.ies.add(dot11::make_ssid_ie(config_.ssid));
  beacon.ies.add(dot11::make_supported_rates_ie(dot11::default_bg_rates()));
  beacon.ies.add(dot11::make_ds_param_ie(config_.channel));

  dot11::Tim tim;
  tim.dtim_period = config_.dtim_period;
  for (const auto& [mac, cl] : clients_) {
    if (cl.power_save && !cl.buffered_llc.empty()) tim.aids.push_back(cl.aid);
  }
  std::sort(tim.aids.begin(), tim.aids.end());
  beacon.ies.add(dot11::make_tim_ie(tim));

  beacon.ies.add(dot11::make_country_ie());
  beacon.ies.add(dot11::make_erp_ie());
  beacon.ies.add(dot11::make_ht_caps_ie());
  if (!config_.passphrase.empty()) beacon.ies.add(rsn_ie_);

  const Bytes mpdu = dot11::build_mgmt_mpdu(MgmtSubtype::Beacon, MacAddress::broadcast(),
                                            config_.bssid, config_.bssid, next_seq(),
                                            beacon.encode());
  csma_->send(mpdu, config_.mgmt_rate, /*expect_ack=*/false,
              [this](const sim::Csma::Result&) { ++stats_.beacons_sent; });
}

void AccessPoint::send_ack_after_sifs(const MacAddress& to) {
  scheduler_.schedule_in(phy::MacTiming::kSifs, [this, to] {
    if (down_) return;
    if (medium_.transmitting(node_id_)) {
      // Extremely rare half-duplex clash; nudge the ACK slightly.
      scheduler_.schedule_in(Duration{10}, [this, to] { send_ack_after_sifs(to); });
      return;
    }
    sim::TxRequest req;
    req.mpdu = dot11::build_ack(to);
    req.airtime = phy::ack_airtime();
    req.tx_power_dbm = config_.tx_power_dbm;
    req.rate = phy::kControlResponseRate;
    medium_.transmit(node_id_, std::move(req));
    ++stats_.acks_sent;
  });
}

void AccessPoint::send_mgmt(MgmtSubtype subtype, const MacAddress& da, BytesView body,
                            bool expect_ack) {
  if (down_) return;
  const Bytes mpdu = dot11::build_mgmt_mpdu(subtype, da, config_.bssid, config_.bssid,
                                            next_seq(), body);
  csma_->send(mpdu, config_.mgmt_rate, expect_ack, {});
}

void AccessPoint::send_eapol(const MacAddress& da, const dot11::EapolKeyFrame& frame) {
  if (down_) return;
  const Bytes llc = net::llc_wrap(net::EtherType::Eapol, frame.encode());
  const Bytes mpdu = dot11::build_data_from_ds(da, config_.bssid, config_.bssid, next_seq(),
                                               llc, /*protected_frame=*/false);
  csma_->send(mpdu, config_.data_rate, /*expect_ack=*/true, {});
}

void AccessPoint::on_frame(const sim::RxFrame& frame) {
  // Control frames first: ACK (for our unicast sends) and PS-Poll.
  if (dot11::is_control_frame(frame.mpdu)) {
    if (auto ack = dot11::parse_ack(frame.mpdu); ack && ack->fcs_ok) {
      if (ack->receiver == config_.bssid) csma_->notify_ack();
      return;
    }
    if (auto poll = dot11::parse_ps_poll(frame.mpdu); poll && poll->fcs_ok) {
      if (poll->bssid == config_.bssid) {
        ++stats_.ps_poll_received;
        send_ack_after_sifs(poll->transmitter);
        handle_ps_poll(*poll);
      }
      return;
    }
    return;
  }

  auto parsed = dot11::parse_mpdu(frame.mpdu);
  if (!parsed || !parsed->fcs_ok) return;
  const dot11::MacHeader& h = parsed->header;

  // Ignore our own network's downlink frames echoed by the medium.
  if (h.addr2 == config_.bssid) return;

  const bool for_us = h.addr1 == config_.bssid;
  const bool broadcast = h.addr1.is_broadcast();
  if (!for_us) {
    csma_->observe_nav(h.duration_id);  // virtual carrier sense
    if (!broadcast) return;
  }

  // Every good unicast frame addressed to us is acknowledged.
  if (for_us) send_ack_after_sifs(h.addr2);

  switch (h.fc.type) {
    case dot11::FrameType::Management:
      switch (static_cast<MgmtSubtype>(h.fc.subtype)) {
        case MgmtSubtype::ProbeRequest:
          handle_probe_request(*parsed);
          break;
        case MgmtSubtype::Authentication:
          handle_auth(*parsed);
          break;
        case MgmtSubtype::AssocRequest:
          handle_assoc_request(*parsed);
          break;
        case MgmtSubtype::Deauthentication:
        case MgmtSubtype::Disassoc:
          clients_.erase(h.addr2);
          break;
        default:
          break;
      }
      break;
    case dot11::FrameType::Data:
      handle_data(*parsed);
      break;
    default:
      break;
  }
}

void AccessPoint::handle_probe_request(const dot11::ParsedMpdu& mpdu) {
  auto req = dot11::ProbeRequest::decode(mpdu.body);
  if (!req) return;
  // Respond to wildcard probes and probes naming our SSID.
  const auto ssid = dot11::parse_ssid_ie(req->ies);
  if (ssid && !ssid->empty() && *ssid != config_.ssid) return;

  dot11::ProbeResponse resp;
  resp.timestamp_us = static_cast<std::uint64_t>(scheduler_.now().us());
  resp.beacon_interval_tu = config_.beacon_interval_tu;
  resp.capability = dot11::Capability::kEss | dot11::Capability::kShortSlot;
  if (!config_.passphrase.empty()) resp.capability |= dot11::Capability::kPrivacy;
  resp.ies.add(dot11::make_ssid_ie(config_.ssid));
  resp.ies.add(dot11::make_supported_rates_ie(dot11::default_bg_rates()));
  resp.ies.add(dot11::make_ds_param_ie(config_.channel));
  resp.ies.add(dot11::make_ht_caps_ie());
  if (!config_.passphrase.empty()) resp.ies.add(rsn_ie_);

  ++stats_.probe_responses;
  send_mgmt(MgmtSubtype::ProbeResponse, mpdu.header.addr2, resp.encode(),
            /*expect_ack=*/true);
}

void AccessPoint::handle_auth(const dot11::ParsedMpdu& mpdu) {
  auto auth = dot11::Authentication::decode(mpdu.body);
  if (!auth || auth->transaction_seq != 1) return;

  const MacAddress sta = mpdu.header.addr2;
  dot11::Authentication resp;
  resp.transaction_seq = 2;
  if (auth->algorithm != dot11::Authentication::Algorithm::OpenSystem) {
    resp.status = dot11::StatusCode::AuthAlgoUnsupported;
  } else {
    client(sta).state = ClientState::Authenticated;
  }
  scheduler_.schedule_in(config_.auth_processing, [this, sta, resp] {
    ++stats_.auth_responses;
    send_mgmt(MgmtSubtype::Authentication, sta, resp.encode(), /*expect_ack=*/true);
  });
}

void AccessPoint::handle_assoc_request(const dot11::ParsedMpdu& mpdu) {
  auto req = dot11::AssocRequest::decode(mpdu.body);
  if (!req) return;
  const MacAddress sta = mpdu.header.addr2;
  auto it = clients_.find(sta);
  if (it == clients_.end()) return;  // must authenticate first

  Client& cl = it->second;
  if (cl.aid == 0) cl.aid = next_aid_++;
  cl.state = ClientState::Associated;

  dot11::AssocResponse resp;
  resp.status = dot11::StatusCode::Success;
  resp.aid = cl.aid;
  resp.ies.add(dot11::make_supported_rates_ie(dot11::default_bg_rates()));
  resp.ies.add(dot11::make_ht_caps_ie());

  scheduler_.schedule_in(config_.assoc_processing, [this, sta, resp] {
    ++stats_.assoc_responses;
    send_mgmt(MgmtSubtype::AssocResponse, sta, resp.encode(), /*expect_ack=*/true);
    // Protected network: kick off the 4-way handshake after the assoc
    // response is on its way.
    if (!config_.passphrase.empty()) {
      auto cit = clients_.find(sta);
      if (cit == clients_.end()) return;
      Client& cl2 = cit->second;
      for (auto& b : cl2.anonce) b = static_cast<std::uint8_t>(rng_.below(256));
      cl2.eapol_replay = 1;
      cl2.state = ClientState::HandshakeM1;
      scheduler_.schedule_in(config_.eapol_processing, [this, sta] {
        auto cit2 = clients_.find(sta);
        if (cit2 == clients_.end()) return;
        send_eapol(sta, dot11::make_handshake_m1(cit2->second.eapol_replay,
                                                 cit2->second.anonce));
      });
    } else {
      auto cit = clients_.find(sta);
      if (cit != clients_.end()) cit->second.state = ClientState::Ready;
    }
  });
}

void AccessPoint::handle_data(const dot11::ParsedMpdu& mpdu) {
  const dot11::MacHeader& h = mpdu.header;
  if (!h.fc.to_ds || h.fc.from_ds) return;
  const MacAddress sta = h.addr2;

  update_power_save(sta, h.fc.power_management);

  if (h.fc.is_data(dot11::DataSubtype::Null)) return;  // PS signalling only
  ++stats_.data_frames_received;

  auto it = clients_.find(sta);
  if (it == clients_.end()) return;
  Client& cl = it->second;

  Bytes plain_body;
  BytesView body = mpdu.body;
  if (h.fc.protected_frame) {
    if (!cl.ccmp) return;
    auto opened = cl.ccmp->open(sta, body);
    if (!opened) {
      WILE_LOG(Warn) << "AP: CCMP open failed for " << sta.to_string();
      return;
    }
    plain_body = std::move(*opened);
    body = plain_body;
  }

  auto llc = net::LlcSnap::decode(body);
  if (!llc) return;
  switch (llc->ethertype) {
    case net::EtherType::Eapol:
      ++stats_.eapol_frames_received;
      handle_eapol(sta, llc->payload);
      break;
    case net::EtherType::Ipv4:
      handle_uplink_ip(sta, llc->payload);
      break;
    case net::EtherType::Arp: {
      auto arp = net::ArpPacket::decode(llc->payload);
      if (arp) handle_arp(sta, *arp);
      break;
    }
  }
}

void AccessPoint::handle_eapol(const MacAddress& sta, BytesView eapol_bytes) {
  auto frame = dot11::EapolKeyFrame::decode(eapol_bytes);
  if (!frame) return;
  auto it = clients_.find(sta);
  if (it == clients_.end()) return;
  Client& cl = it->second;

  const int msg = dot11::handshake_message_number(*frame);
  if (msg == 2 && cl.state == ClientState::HandshakeM1) {
    // Derive the PTK from the supplicant nonce and verify the MIC.
    cl.ptk = crypto::derive_ptk(pmk_, config_.bssid, sta, cl.anonce, frame->nonce);
    if (!frame->verify_mic(cl.ptk.kck)) {
      WILE_LOG(Warn) << "AP: M2 MIC mismatch from " << sta.to_string();
      return;
    }
    cl.state = ClientState::HandshakeM3;
    cl.eapol_replay += 1;
    scheduler_.schedule_in(config_.eapol_processing, [this, sta] {
      auto cit = clients_.find(sta);
      if (cit == clients_.end()) return;
      Client& c = cit->second;
      ByteWriter w(rsn_ie_.data.size() + 2);
      w.u8(static_cast<std::uint8_t>(dot11::IeId::Rsn));
      w.u8(static_cast<std::uint8_t>(rsn_ie_.data.size()));
      w.bytes(rsn_ie_.data);
      const Bytes rsn_encoded = w.take();
      send_eapol(sta, dot11::make_handshake_m3(c.eapol_replay, c.anonce, rsn_encoded,
                                               gtk_, c.ptk.kck, c.ptk.kek));
    });
  } else if (msg == 4 && cl.state == ClientState::HandshakeM3) {
    if (!frame->verify_mic(cl.ptk.kck)) return;
    cl.state = ClientState::Ready;
    cl.ccmp = std::make_unique<dot11::CcmpSession>(cl.ptk.tk);
    ++stats_.handshakes_completed;
  }
}

void AccessPoint::handle_uplink_ip(const MacAddress& sta, BytesView packet) {
  auto parsed = net::Ipv4Header::decode(packet);
  if (!parsed || !parsed->checksum_ok) return;
  if (parsed->header.protocol != net::IpProto::Udp) return;
  auto udp = net::UdpDatagram::decode(parsed->payload, parsed->header.source,
                                      parsed->header.destination);
  if (!udp || !udp->checksum_ok) return;

  if (udp->datagram.dest_port == net::DhcpMessage::kServerPort) {
    auto dhcp = net::DhcpMessage::decode(udp->datagram.payload);
    if (dhcp) handle_dhcp(sta, *dhcp);
    return;
  }
  ++stats_.uplink_udp_datagrams;
  if (uplink_) uplink_(sta, parsed->header, udp->datagram);
}

void AccessPoint::handle_dhcp(const MacAddress& sta, const net::DhcpMessage& msg) {
  auto reply_llc = [this](const net::DhcpMessage& reply) {
    const Bytes udp = net::udp_packet(config_.ip, net::DhcpMessage::kServerPort,
                                      net::Ipv4Address::broadcast(),
                                      net::DhcpMessage::kClientPort, reply.encode());
    return net::llc_wrap(net::EtherType::Ipv4, udp);
  };

  if (msg.type == net::DhcpMessageType::Discover) {
    const net::Ipv4Address offered = allocate_ip(sta);
    const net::DhcpMessage offer =
        net::DhcpMessage::offer(msg, offered, config_.ip, config_.dhcp_lease_seconds);
    scheduler_.schedule_in(config_.dhcp_offer_delay, [this, sta, llc = reply_llc(offer)] {
      if (down_) return;
      // DHCP OFFER/ACK go out as broadcast data frames (the client has no
      // committed address yet and sets the broadcast flag).
      const Bytes mpdu =
          dot11::build_data_from_ds(MacAddress::broadcast(), config_.bssid, config_.bssid,
                                    next_seq(), llc, /*protected_frame=*/false);
      csma_->send(mpdu, config_.mgmt_rate, /*expect_ack=*/false, {});
    });
  } else if (msg.type == net::DhcpMessageType::Request) {
    const auto requested = msg.ip_option(net::DhcpOption::kRequestedIp);
    const net::Ipv4Address assigned = requested ? *requested : allocate_ip(sta);
    auto it = clients_.find(sta);
    if (it != clients_.end()) it->second.lease = assigned;
    ip_to_mac_[assigned.value()] = sta;
    const net::DhcpMessage ack =
        net::DhcpMessage::ack(msg, assigned, config_.ip, config_.dhcp_lease_seconds);
    scheduler_.schedule_in(config_.dhcp_ack_delay, [this, llc = reply_llc(ack)] {
      if (down_) return;
      ++stats_.dhcp_acks_sent;
      const Bytes mpdu =
          dot11::build_data_from_ds(MacAddress::broadcast(), config_.bssid, config_.bssid,
                                    next_seq(), llc, /*protected_frame=*/false);
      csma_->send(mpdu, config_.mgmt_rate, /*expect_ack=*/false, {});
    });
  }
}

void AccessPoint::handle_arp(const MacAddress& sta, const net::ArpPacket& arp) {
  if (arp.op != net::ArpPacket::Op::Request) return;  // announcements: observe only
  if (arp.target_ip != config_.ip) return;
  const net::ArpPacket reply =
      net::ArpPacket::reply(config_.bssid, config_.ip, arp.sender_mac, arp.sender_ip);
  scheduler_.schedule_in(config_.arp_reply_delay, [this, sta, reply] {
    ++stats_.arp_replies_sent;
    deliver_or_buffer(sta, net::llc_wrap(net::EtherType::Arp, reply.encode()));
  });
}

void AccessPoint::handle_ps_poll(const dot11::PsPollFrame& poll) {
  auto it = clients_.find(poll.transmitter);
  if (it == clients_.end()) return;
  Client& cl = it->second;
  if (cl.buffered_llc.empty()) return;
  Bytes llc = std::move(cl.buffered_llc.front());
  cl.buffered_llc.pop_front();
  ++stats_.buffered_frames_delivered;
  send_downlink_llc(poll.transmitter, std::move(llc), !cl.buffered_llc.empty());
}

void AccessPoint::update_power_save(const MacAddress& sta, bool ps) {
  auto it = clients_.find(sta);
  if (it == clients_.end()) return;
  Client& cl = it->second;
  if (cl.power_save == ps) return;
  cl.power_save = ps;
  if (!ps) {
    // Waking: flush everything we buffered.
    while (!cl.buffered_llc.empty()) {
      Bytes llc = std::move(cl.buffered_llc.front());
      cl.buffered_llc.pop_front();
      ++stats_.buffered_frames_delivered;
      send_downlink_llc(sta, std::move(llc), !cl.buffered_llc.empty());
    }
  }
}

void AccessPoint::send_downlink_llc(const MacAddress& da, Bytes llc, bool more_data) {
  if (down_) return;
  auto it = clients_.find(da);
  const bool protect = it != clients_.end() && it->second.ccmp != nullptr;
  Bytes body = protect ? it->second.ccmp->seal(config_.bssid, llc) : std::move(llc);
  const Bytes mpdu = dot11::build_data_from_ds(da, config_.bssid, config_.bssid, next_seq(),
                                               body, protect, more_data);
  csma_->send(mpdu, config_.data_rate, /*expect_ack=*/true, {});
}

void AccessPoint::deliver_or_buffer(const MacAddress& da, Bytes llc) {
  auto it = clients_.find(da);
  if (it != clients_.end() && it->second.power_save) {
    it->second.buffered_llc.push_back(std::move(llc));
    return;
  }
  send_downlink_llc(da, std::move(llc), /*more_data=*/false);
}

bool AccessPoint::send_downlink_udp(const MacAddress& sta, net::Ipv4Address src_ip,
                                    std::uint16_t src_port, std::uint16_t dst_port,
                                    BytesView payload) {
  auto it = clients_.find(sta);
  if (it == clients_.end() || !it->second.lease) return false;
  const Bytes packet = net::udp_packet(src_ip, src_port, *it->second.lease, dst_port, payload);
  deliver_or_buffer(sta, net::llc_wrap(net::EtherType::Ipv4, packet));
  return true;
}

bool AccessPoint::client_ready(const MacAddress& sta) const {
  auto it = clients_.find(sta);
  return it != clients_.end() && it->second.state == ClientState::Ready;
}

std::optional<net::Ipv4Address> AccessPoint::client_ip(const MacAddress& sta) const {
  auto it = clients_.find(sta);
  if (it == clients_.end()) return std::nullopt;
  return it->second.lease;
}

AccessPoint::Client& AccessPoint::client(const MacAddress& sta) { return clients_[sta]; }

net::Ipv4Address AccessPoint::allocate_ip(const MacAddress& sta) {
  auto it = clients_.find(sta);
  if (it != clients_.end()) {
    if (it->second.lease) return *it->second.lease;
    if (it->second.offered) return *it->second.offered;
  }
  const net::Ipv4Address ip{config_.dhcp_pool_start.value() + next_host_++};
  if (it != clients_.end()) it->second.offered = ip;
  return ip;
}

void AccessPoint::publish_metrics(telemetry::MetricsRegistry& registry,
                                  const std::string& prefix) const {
  registry.bind_counter(prefix + ".beacons_sent", &stats_.beacons_sent);
  registry.bind_counter(prefix + ".probe_responses", &stats_.probe_responses);
  registry.bind_counter(prefix + ".auth_responses", &stats_.auth_responses);
  registry.bind_counter(prefix + ".assoc_responses", &stats_.assoc_responses);
  registry.bind_counter(prefix + ".handshakes_completed", &stats_.handshakes_completed);
  registry.bind_counter(prefix + ".acks_sent", &stats_.acks_sent);
  registry.bind_counter(prefix + ".data_frames_received", &stats_.data_frames_received);
  registry.bind_counter(prefix + ".eapol_frames_received", &stats_.eapol_frames_received);
  registry.bind_counter(prefix + ".dhcp_acks_sent", &stats_.dhcp_acks_sent);
  registry.bind_counter(prefix + ".arp_replies_sent", &stats_.arp_replies_sent);
  registry.bind_counter(prefix + ".uplink_udp_datagrams", &stats_.uplink_udp_datagrams);
  registry.bind_counter(prefix + ".ps_poll_received", &stats_.ps_poll_received);
  registry.bind_counter(prefix + ".buffered_frames_delivered",
                        &stats_.buffered_frames_delivered);
  registry.bind_counter(prefix + ".outages", &stats_.outages);
}

}  // namespace wile::ap
