#include "ap/wur_scheduler.hpp"

#include <stdexcept>
#include <utility>

namespace wile::ap {

WurScheduler::WurScheduler(sim::Scheduler& scheduler, sim::Medium& medium,
                           sim::Position position, Rng rng, Config config)
    : scheduler_(scheduler), medium_(medium), config_(config) {
  node_id_ = medium_.attach(this, position);
  sim::CsmaConfig csma_cfg;
  csma_cfg.tx_power_dbm = config_.tx_power_dbm;
  csma_ = std::make_unique<sim::Csma>(scheduler_, medium_, node_id_, rng.fork(), csma_cfg);
}

void WurScheduler::wake(std::uint16_t wur_id) {
  phy::WakeUpFrame frame;
  frame.group_addressed = false;
  frame.address = wur_id & phy::WurPhy::kMaxId;
  frame.seq = seq_++;
  send_wake(frame);
}

void WurScheduler::wake_group(std::uint16_t group_id) {
  phy::WakeUpFrame frame;
  frame.group_addressed = true;
  frame.address = group_id & phy::WurPhy::kMaxId;
  frame.seq = seq_++;
  send_wake(frame);
}

void WurScheduler::send_wake(phy::WakeUpFrame frame) {
  const Bytes body = phy::encode_wakeup_frame(frame);
  const Duration airtime = phy::WurPhy::frame_airtime(config_.rate);
  const int repeats = std::max(config_.repeats, 1);
  for (int r = 0; r < repeats; ++r) {
    ++wakes_sent_;
    tx_airtime_total_ += airtime;
    csma_->send_raw(body, airtime, {});
  }
}

void WurScheduler::start_round_robin(std::vector<std::uint16_t> ids,
                                     Duration sweep_period) {
  if (ids.empty()) throw std::invalid_argument("WurScheduler: empty WUR ID list");
  ++campaign_epoch_;
  rr_ids_ = std::move(ids);
  rr_index_ = 0;
  cadence_group_ = 0;
  tick_gap_ = Duration{std::max<std::int64_t>(
      sweep_period.count() / static_cast<std::int64_t>(rr_ids_.size()), 1)};
  next_tick_at_ = scheduler_.now() + tick_gap_;
  schedule_next_tick();
}

void WurScheduler::start_group_cadence(std::uint16_t group_id, Duration period) {
  if (period.count() <= 0) throw std::invalid_argument("WurScheduler: period must be > 0");
  ++campaign_epoch_;
  rr_ids_.clear();
  cadence_group_ = group_id & phy::WurPhy::kMaxId;
  tick_gap_ = period;
  next_tick_at_ = scheduler_.now() + tick_gap_;
  schedule_next_tick();
}

void WurScheduler::stop() { ++campaign_epoch_; }

void WurScheduler::schedule_next_tick() {
  const std::uint64_t epoch = campaign_epoch_;
  scheduler_.schedule_at(next_tick_at_, [this, epoch] {
    if (epoch != campaign_epoch_) return;  // campaign replaced or stopped
    next_tick_at_ += tick_gap_;
    if (!rr_ids_.empty()) {
      const std::uint16_t id = rr_ids_[rr_index_];
      rr_index_ = (rr_index_ + 1) % rr_ids_.size();
      wake(id);
    } else {
      wake_group(cadence_group_);
    }
    schedule_next_tick();
  });
}

}  // namespace wile::ap
