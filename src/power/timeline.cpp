#include "power/timeline.hpp"

#include <algorithm>
#include <stdexcept>

namespace wile::power {

void PowerTimeline::set_current(TimePoint t, Amps current, std::string_view phase) {
  if (!segments_.empty()) {
    const Segment& last = segments_.back();
    if (t < last.start) {
      throw std::logic_error("PowerTimeline: non-monotonic set_current");
    }
    if (last.current == current && last.phase == phase) return;  // no change
    if (t == last.start) {
      // Replacing a zero-length segment.
      segments_.back().current = current;
      segments_.back().phase = std::string(phase);
      return;
    }
  }
  segments_.push_back(Segment{t, current, std::string(phase)});
  if (max_segments_ > 0 && segments_.size() > max_segments_) fold_history();
}

void PowerTimeline::fold_history() {
  // Fold the oldest half into the baseline integral; keep the newest
  // half so recent-window queries (per-cycle energy) stay exact.
  const std::size_t keep = std::max<std::size_t>(max_segments_ / 2, 1);
  const std::size_t drop = segments_.size() - keep;
  const TimePoint horizon = segments_[drop].start;
  for (std::size_t i = 0; i < drop; ++i) {
    const TimePoint seg_end = segments_[i + 1].start;
    const TimePoint lo = std::max(segments_[i].start, retained_since_);
    if (seg_end > lo) baseline_energy_ += (supply_ * segments_[i].current) * (seg_end - lo);
  }
  segments_.erase(segments_.begin(),
                  segments_.begin() + static_cast<std::ptrdiff_t>(drop));
  retained_since_ = horizon;
}

Amps PowerTimeline::current_at(TimePoint t) const {
  if (segments_.empty() || t < segments_.front().start) return Amps{0.0};
  // Last segment with start <= t.
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), t,
      [](TimePoint value, const Segment& s) { return value < s.start; });
  --it;
  return it->current;
}

Joules PowerTimeline::energy_between(TimePoint from, TimePoint to) const {
  if (to <= from || segments_.empty()) return Joules{0.0};
  Joules total{0.0};
  // Queries reaching to (or past) the folded horizon get the exact
  // integral from simulation start; see set_max_segments.
  if (from < retained_since_) total += baseline_energy_;
  // Skip straight to the segment containing `from`: per-cycle queries on
  // a long-lived timeline touch only its last few segments.
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), from,
      [](TimePoint value, const Segment& s) { return value < s.start; });
  std::size_t i = (it == segments_.begin())
                      ? 0
                      : static_cast<std::size_t>(it - segments_.begin()) - 1;
  for (; i < segments_.size(); ++i) {
    const TimePoint seg_start = segments_[i].start;
    if (seg_start >= to) break;
    const TimePoint seg_end =
        (i + 1 < segments_.size()) ? segments_[i + 1].start : to;
    const TimePoint lo = std::max(seg_start, from);
    const TimePoint hi = std::min(seg_end, to);
    if (hi <= lo) continue;
    total += (supply_ * segments_[i].current) * (hi - lo);
  }
  return total;
}

Watts PowerTimeline::average_power(TimePoint from, TimePoint to) const {
  if (to <= from) return Watts{0.0};
  return energy_between(from, to) / (to - from);
}

bool PowerTimeline::find_phase(std::string_view phase, TimePoint from, TimePoint* start,
                               TimePoint* end) const {
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    if (segments_[i].phase == phase && segments_[i].start >= from) {
      if (start != nullptr) *start = segments_[i].start;
      if (end != nullptr) {
        // Phase extends over consecutive segments with the same label.
        std::size_t j = i;
        while (j + 1 < segments_.size() && segments_[j + 1].phase == phase) ++j;
        *end = (j + 1 < segments_.size()) ? segments_[j + 1].start : segments_[j].start;
      }
      return true;
    }
  }
  return false;
}

Watts duty_cycle_average_power(Watts p_tx, Duration t_tx, Watts p_idle, Duration interval) {
  if (interval <= t_tx) return p_tx;
  const Joules active = p_tx * t_tx;
  const Joules idle = p_idle * (interval - t_tx);
  return (active + idle) / interval;
}

}  // namespace wile::power
