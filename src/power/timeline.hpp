// Piecewise-constant current-draw timeline.
//
// The firmware models (STA, AP, Wi-LE sender, BLE slave) report every
// current change with a phase label ("MC/WiFi init", "Probe/Auth./
// Associate", ...). Energy is the integral of current x supply voltage;
// the TraceRecorder samples the same timeline the way the paper's
// Keysight 34465A samples the real board (§5.1, Figure 2).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/units.hpp"

namespace wile::power {

struct Segment {
  TimePoint start;
  Amps current;
  std::string phase;  // annotation for Figure 3-style plots
};

class PowerTimeline {
 public:
  explicit PowerTimeline(Volts supply) : supply_(supply) {}

  [[nodiscard]] Volts supply() const { return supply_; }

  /// Report that from `t` onward the device draws `current`. `t` must be
  /// monotonically non-decreasing across calls. Consecutive identical
  /// currents are merged (the phase label of the first is kept).
  void set_current(TimePoint t, Amps current, std::string_view phase);

  /// Bound the retained segment history (0 = unbounded, the default).
  /// When the bound is exceeded, the oldest half of the history is
  /// folded into an accumulated energy baseline and discarded. Totals
  /// stay exact: an energy_between query that starts at or before the
  /// retained horizon includes the folded baseline (i.e. it reports the
  /// integral from simulation start). Queries that begin strictly
  /// inside the discarded span cannot be answered segment-accurately
  /// any more; fleet-scale simulations that only need per-cycle and
  /// lifetime totals set this to a small multiple of the segments one
  /// duty cycle produces (see bench/scale_fleet).
  void set_max_segments(std::size_t max_segments) { max_segments_ = max_segments; }

  /// Time before which segment history has been folded away.
  [[nodiscard]] TimePoint retained_since() const { return retained_since_; }

  [[nodiscard]] Amps current_at(TimePoint t) const;

  /// Integrated energy over [from, to). The final segment extends to
  /// infinity (the device keeps drawing its last reported current).
  [[nodiscard]] Joules energy_between(TimePoint from, TimePoint to) const;

  /// Mean power over [from, to).
  [[nodiscard]] Watts average_power(TimePoint from, TimePoint to) const;

  [[nodiscard]] const std::vector<Segment>& segments() const { return segments_; }

  /// First time at or after `from` where the phase label equals `phase`;
  /// returns false if never. Used by benches to locate e.g. the TX spike.
  bool find_phase(std::string_view phase, TimePoint from, TimePoint* start,
                  TimePoint* end) const;

 private:
  void fold_history();

  Volts supply_;
  std::vector<Segment> segments_;
  std::size_t max_segments_ = 0;
  TimePoint retained_since_{};  // history before this is baseline-only
  Joules baseline_energy_{};    // integral over [0, retained_since_)
};

/// Equation (1) of the paper: average power for a duty-cycled device
/// that spends Ttx at Ptx each interval INT and idles at Pidle otherwise.
Watts duty_cycle_average_power(Watts p_tx, Duration t_tx, Watts p_idle, Duration interval);

}  // namespace wile::power
