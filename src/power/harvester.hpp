// Intermittent-power supply: capacitor harvester + energy governor.
//
// "Powering the Next Billion Devices with Wi-Fi" and BEH (PAPERS.md)
// run beacon-class senders off harvested RF: a small capacitor charges
// from ambient RF (the AP's own transmissions, scaled by the same
// log-distance path loss the data channel uses) and browns out when a
// protocol phase outruns the stored charge. This header models that
// power path for the Wi-LE sender:
//
//   * Harvester — the capacitor: charge integrates (harvest - leakage)
//     between settlement points, clamped to [0, capacity]. Harvest-rate
//     fades (RF droughts, shadowing people) stack multiplicatively and
//     unwind exactly (the active fades are kept and the product is
//     recomputed, so push/pop restores the bit-identical rate).
//   * EnergyGovernor — couples a Harvester to the device's
//     PowerTimeline: at every protocol-phase boundary the sender
//     settles the governor, which drains the energy the timeline
//     actually recorded since the last settlement and integrates the
//     harvest over the same span. The governor is also the
//     sim::EnergyFaultTarget the FaultInjector drives (scheduled
//     brown-outs, fades, fleet-wide droughts).
//
// Everything is closed-form arithmetic on the simulated clock: no RNG
// draws, so attaching a harvester never perturbs the fork sequence and
// same-seed runs stay bit-exact (tests/test_harvesting.cpp pins this).
#pragma once

#include <functional>
#include <vector>

#include "phy/channel.hpp"
#include "power/timeline.hpp"
#include "sim/fault.hpp"
#include "sim/scheduler.hpp"
#include "util/units.hpp"

namespace wile::power {

struct HarvesterConfig {
  /// Storage capacitance; usable energy is C * V^2 / 2 at the operating
  /// voltage (a boost converter is assumed to flatten the discharge
  /// curve, so we book-keep energy, not voltage).
  double capacitance_f = 100e-3;  // 100 mF supercap
  Volts operating_voltage{3.3};
  /// Fraction of capacity stored at t=0 (deployment starts charged).
  double initial_charge_fraction = 1.0;
  /// Gross harvested input while the RF source is unfaded. Use
  /// rf_harvest_power() to derive it from distance to the source.
  Watts harvest_power = microwatts(100);
  /// Parasitic self-discharge, drawn regardless of fades.
  Watts leakage = microwatts(1);

  [[nodiscard]] Joules capacity() const {
    return Joules{0.5 * capacitance_f * operating_voltage.value * operating_voltage.value};
  }
};

/// Harvested power for a rectenna `distance_m` away from an RF source
/// transmitting at `source_tx_dbm`, through the same log-distance
/// channel the data path uses. `efficiency` is the RF-to-DC conversion
/// ratio (practical rectifiers: 0.1-0.5). This is what makes the
/// distance -> report-rate frontier fall out of the existing channel
/// model (bench/ablate_harvesting).
[[nodiscard]] Watts rf_harvest_power(const phy::Channel& channel, double source_tx_dbm,
                                     double distance_m, double efficiency);

/// The capacitor. Charge state advances only at settlement points; the
/// net input (harvest * fades - leakage) is constant between them, so
/// integration is exact.
class Harvester {
 public:
  explicit Harvester(HarvesterConfig config);

  [[nodiscard]] const HarvesterConfig& config() const { return config_; }
  [[nodiscard]] Joules capacity() const { return capacity_; }
  /// Charge as of the last settlement (see EnergyGovernor for clock
  /// coupling).
  [[nodiscard]] Joules charge() const { return charge_; }
  [[nodiscard]] bool empty() const { return charge_.value <= 0.0; }

  /// Net input right now: harvest * fade_scale - leakage (may be
  /// negative — a drought drains the cap through leakage).
  [[nodiscard]] Watts net_input() const;
  [[nodiscard]] double fade_scale() const { return fade_scale_; }

  /// Advance by `dt`: integrate the net input, subtract `consumed`
  /// (energy the load drew over the span), clamp to [0, capacity].
  void advance(Duration dt, Joules consumed);

  /// Instant brown-out: dump the stored charge.
  void drain_all() { charge_ = Joules{0.0}; }

  /// Harvest-rate fades stack multiplicatively; pop removes one matching
  /// push and recomputes the product from the survivors, so unwinding
  /// restores the exact pre-fault rate (no drifting a*s/s residue).
  void push_fade(double scale);
  void pop_fade(double scale);

  /// Time until charge first reaches `target` at the current net input
  /// (Duration::max() if the input can never get there). Exact inverse
  /// of advance() with no consumption, so a wake scheduled this far out
  /// finds the capacitor at the target.
  [[nodiscard]] Duration time_to_reach(Joules target) const;

 private:
  HarvesterConfig config_;
  Joules capacity_{};
  Joules charge_{};
  std::vector<double> fades_;
  double fade_scale_ = 1.0;
};

struct EnergyGovernorStats {
  std::uint64_t brown_outs = 0;        // injected + organic
  std::uint64_t settles = 0;
  std::uint64_t fades_applied = 0;
};

/// Gates a sender's protocol phases on the harvester's charge budget.
/// Owned by the Sender; implements the FaultInjector's energy-fault
/// interface so scheduled brown-outs / fades / droughts reach the
/// device without sim linking against the power library.
class EnergyGovernor final : public sim::EnergyFaultTarget {
 public:
  EnergyGovernor(sim::Scheduler& scheduler, const PowerTimeline& timeline,
                 HarvesterConfig config);

  [[nodiscard]] Harvester& harvester() { return harvester_; }
  [[nodiscard]] const Harvester& harvester() const { return harvester_; }
  [[nodiscard]] const EnergyGovernorStats& stats() const { return stats_; }

  /// Advance the harvester to now: drain what the timeline recorded
  /// since the last settlement, integrate the harvest over the span.
  /// Idempotent at a fixed simulated time.
  void settle();

  /// settle() + current charge.
  [[nodiscard]] Joules charge();

  /// Charge projected to `at` WITHOUT mutating any state — what
  /// telemetry gauges read, so attaching a metrics registry (which
  /// samples at its own times) can never perturb the settlement
  /// sequence and break same-seed determinism.
  [[nodiscard]] Joules projected_charge(TimePoint at) const;

  [[nodiscard]] bool can_afford(Joules cost) { return charge() >= cost; }

  /// Time until the settled charge reaches `target` at the current net
  /// input (Duration::max() = never at this rate; re-check when a fade
  /// lifts — see set_harvest_changed_handler).
  [[nodiscard]] Duration time_until(Joules target);

  /// Fires on a brown-out (injected or organic drain-to-empty detected
  /// at a settlement). The owner checkpoints and schedules recovery.
  void set_brown_out_handler(std::function<void()> fn) { on_brown_out_ = std::move(fn); }
  /// Fires whenever the harvest rate changes (fade push/pop), after the
  /// settlement at the fault edge. A recharging owner re-derives its
  /// wake time here.
  void set_harvest_changed_handler(std::function<void()> fn) {
    on_harvest_changed_ = std::move(fn);
  }

  /// Organic brown-out check: true (and fires the handler once) if the
  /// settled charge is empty. The sender calls this at phase
  /// boundaries; a device whose capacitor ran dry mid-phase dies at the
  /// next boundary, which is when the firmware would notice anyway.
  bool check_brown_out();

  // --- sim::EnergyFaultTarget ------------------------------------------------
  void fault_brown_out() override;
  void fault_harvest_push(double scale) override;
  void fault_harvest_pop(double scale) override;

 private:
  sim::Scheduler& scheduler_;
  const PowerTimeline& timeline_;
  Harvester harvester_;
  TimePoint settled_at_{};
  EnergyGovernorStats stats_;
  std::function<void()> on_brown_out_;
  std::function<void()> on_harvest_changed_;
};

}  // namespace wile::power
