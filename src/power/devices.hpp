// Calibrated device power profiles.
//
// Esp32PowerProfile reproduces the prototype platform of the paper
// (§5.1): ESP32 at 3.3 V, CPU pinned to 80 MHz, DFS + automatic light
// sleep enabled, radio at 0 dBm. Cc2541PowerProfile reproduces the
// TI CC2541 BLE reference whose numbers the paper takes from the
// manufacturer's measurement report (TI SWRA347a), at 3.0 V.
//
// Every figure here is either quoted directly by the paper (deep sleep
// 2.5 uA, light sleep 0.8 mA, automatic light sleep ~5 mA class, BLE
// idle 1.1 uA) or calibrated so the simulated protocol exchanges land on
// the paper's Table 1 energies. EXPERIMENTS.md records the residuals.
#pragma once

#include "util/units.hpp"

namespace wile::power {

struct Esp32PowerProfile {
  Volts supply{3.3};

  // --- quiescent states (paper §5.1 / Table 1) -----------------------------
  Amps deep_sleep = microamps(2.5);
  Amps light_sleep = milliamps(0.8);
  /// Automatic light sleep while associated, waking for every 3rd beacon
  /// (WiFi-PS idle draw; Table 1 reports 4500 uA).
  Amps auto_light_sleep_assoc = milliamps(4.5);

  // --- active states --------------------------------------------------------
  /// CPU running at 80 MHz, radio off.
  Amps cpu_active = milliamps(40.0);
  /// Radio listening / receiving.
  Amps radio_rx = milliamps(110.0);
  /// Radio transmitting HT MCS frames at 0 dBm (0.6 W at 3.3 V; see
  /// phy/energy.hpp). This is the rate Wi-LE injects at.
  Amps radio_tx = milliamps(181.8);
  /// Radio transmitting legacy (DSSS/OFDM) frames — management traffic
  /// goes out at higher RF power for robustness, which is where the
  /// ~250 mA spikes of Fig. 3a come from (ESP32 datasheet: 802.11b TX
  /// at +19.5 dBm draws ~240 mA).
  Amps radio_tx_legacy = milliamps(240.0);
  /// DFS + auto light sleep while waiting on network-layer replies
  /// (the 20-30 mA plateau of Fig. 3a's DHCP/ARP phase).
  Amps dfs_idle_wait = milliamps(26.0);

  // --- firmware phase durations (calibrated to Fig. 3) ----------------------
  /// Deep-sleep wake to CPU running: flash read + clock bring-up.
  Duration boot_from_deep_sleep = msec(180);
  /// WiFi stack + RF calibration when preparing to associate as a client
  /// (Fig. 3a "MC/WiFi init" runs 0.2-0.85 s; boot + this).
  Duration wifi_client_init = msec(495);
  /// WiFi init when only injection is needed (Fig. 3b's shorter init:
  /// "it can simply enable the WiFi radio to inject a packet").
  Duration wifi_inject_init = msec(120);
  /// Supplicant-side key derivation and 4-way handshake compute time.
  Duration wpa2_crypto_time = msec(150);
  /// PA ramp + frame DMA immediately around a transmission; drawn at
  /// radio_tx. Calibrated so one Wi-LE beacon costs ~84 uJ (Table 1).
  Duration tx_ramp = usec(87);
  /// Waking from automatic light sleep to service a queued TX (WiFi-PS).
  Duration ps_wake_time = msec(30);
  /// Driver/firmware processing around a PS-mode transmission.
  Duration ps_tx_processing = msec(120);
  /// Shutting the stack down before re-entering deep sleep.
  Duration shutdown_time = msec(25);
};

/// 802.11ba wake-up radio companion receiver. A separate uW-class OOK
/// envelope detector that listens continuously while the main 802.11
/// radio is in deep sleep; the 30 uA figure (99 uW at 3.3 V) sits in
/// the middle of the duty-cycled receiver designs surveyed by the IEEE
/// 802.11ba performance-evaluation literature, which targets < 1 mW.
struct WurReceiverModel {
  /// Always-on listen draw of the companion receiver.
  Amps listen = microamps(30.0);
  /// Companion-receiver decode + main-radio wake interrupt latency
  /// between the end of a wake-up frame and firmware boot starting.
  Duration wake_latency = usec(200);
};

struct Cc2541PowerProfile {
  Volts supply{3.0};

  /// Sleep with RAM retention (Table 1 reports 1.1 uA idle for BLE).
  Amps sleep = microamps(1.1);
  Amps wake_up = milliamps(6.0);
  Amps pre_processing = milliamps(7.4);
  Amps radio_rx = milliamps(14.7);
  Amps radio_tx = milliamps(17.5);  // 0 dBm
  Amps post_processing = milliamps(7.4);
  Amps ifs_idle = milliamps(7.0);

  // --- connection event phase durations (TI SWRA347a) ----------------------
  Duration wake_up_time = usec(400);
  Duration pre_processing_time = usec(340);
  Duration post_processing_time = usec(1370);
};

}  // namespace wile::power
