// Couples firmware phases and radio activity to a PowerTimeline.
//
// Firmware code declares a baseline current for its current phase
// ("MC/WiFi init" at CPU-active, "DHCP/ARP" at the DFS idle plateau...);
// transmissions overlay the TX current for their airtime plus the PA
// ramp, then fall back to the phase baseline. This is what turns a
// protocol exchange into the Figure-3 current trace.
#pragma once

#include <optional>
#include <string>

#include "power/timeline.hpp"
#include "sim/scheduler.hpp"

namespace wile::power {

class RadioPowerTracker {
 public:
  RadioPowerTracker(sim::Scheduler& scheduler, PowerTimeline& timeline, Amps tx_current,
                    Duration tx_ramp)
      : scheduler_(scheduler),
        timeline_(timeline),
        tx_current_(tx_current),
        tx_ramp_(tx_ramp) {}

  /// Enter a firmware phase drawing `baseline` until further notice.
  void set_phase(Amps baseline, std::string label) {
    baseline_ = baseline;
    label_ = std::move(label);
    if (tx_nesting_ == 0) timeline_.set_current(scheduler_.now(), baseline_ + overlay_, label_);
  }

  [[nodiscard]] const std::string& phase_label() const { return label_; }

  /// Always-on companion-circuit draw (the 802.11ba wake-up receiver)
  /// added on top of every phase baseline and TX burst. Defaults to an
  /// exact zero so devices without a companion radio emit bit-identical
  /// timelines. A brown-out clears it (the whole board is dark) and
  /// recovery restores it.
  void set_overlay(Amps overlay, std::string label = {}) {
    overlay_ = overlay;
    if (!label.empty()) label_ = std::move(label);
    if (tx_nesting_ == 0) timeline_.set_current(scheduler_.now(), baseline_ + overlay_, label_);
  }

  [[nodiscard]] Amps overlay() const { return overlay_; }

  /// A transmission starts now and occupies the air for `airtime`; the PA
  /// stays hot for the configured ramp after it. `current` overrides the
  /// default TX draw (legacy-rate frames burn more on the real chip).
  void on_tx_start(Duration airtime, std::optional<Amps> current = std::nullopt) {
    ++tx_nesting_;
    timeline_.set_current(scheduler_.now(), current.value_or(tx_current_) + overlay_, label_);
    scheduler_.schedule_in(airtime + tx_ramp_, [this] {
      if (--tx_nesting_ == 0) {
        timeline_.set_current(scheduler_.now(), baseline_ + overlay_, label_);
      }
    });
  }

 private:
  sim::Scheduler& scheduler_;
  PowerTimeline& timeline_;
  Amps tx_current_;
  Duration tx_ramp_;
  Amps baseline_{};
  Amps overlay_{};
  std::string label_ = "Sleep";
  int tx_nesting_ = 0;
};

}  // namespace wile::power
