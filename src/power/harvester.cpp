#include "power/harvester.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace wile::power {

Watts rf_harvest_power(const phy::Channel& channel, double source_tx_dbm,
                       double distance_m, double efficiency) {
  const double rx_dbm = channel.rx_power_dbm(source_tx_dbm, distance_m);
  const double rx_watts = std::pow(10.0, (rx_dbm - 30.0) / 10.0);
  return Watts{rx_watts * std::clamp(efficiency, 0.0, 1.0)};
}

// ---------------------------------------------------------------------------
// Harvester.
// ---------------------------------------------------------------------------

Harvester::Harvester(HarvesterConfig config) : config_(config) {
  if (config_.capacitance_f <= 0.0) {
    throw std::invalid_argument("Harvester: capacitance must be positive");
  }
  capacity_ = config_.capacity();
  charge_ = Joules{capacity_.value *
                   std::clamp(config_.initial_charge_fraction, 0.0, 1.0)};
}

Watts Harvester::net_input() const {
  return Watts{config_.harvest_power.value * fade_scale_ - config_.leakage.value};
}

void Harvester::advance(Duration dt, Joules consumed) {
  if (dt.count() < 0) throw std::invalid_argument("Harvester: negative advance");
  const double in = net_input().value * to_seconds(dt);
  charge_ = Joules{std::clamp(charge_.value + in - consumed.value, 0.0, capacity_.value)};
}

void Harvester::push_fade(double scale) {
  if (scale < 0.0) throw std::invalid_argument("Harvester: negative fade scale");
  fades_.push_back(scale);
  fade_scale_ = 1.0;
  for (double s : fades_) fade_scale_ *= s;
}

void Harvester::pop_fade(double scale) {
  const auto it = std::find(fades_.begin(), fades_.end(), scale);
  if (it == fades_.end()) return;  // unmatched pop: a no-op, not a throw
  fades_.erase(it);
  // Recompute from the survivors so unwinding restores the exact
  // pre-fault product (dividing would leave a rounding residue).
  fade_scale_ = 1.0;
  for (double s : fades_) fade_scale_ *= s;
}

Duration Harvester::time_to_reach(Joules target) const {
  const double deficit = std::min(target.value, capacity_.value) - charge_.value;
  if (deficit <= 0.0) return Duration{0};
  const double rate = net_input().value;
  if (rate <= 0.0) return Duration::max();
  const double secs = deficit / rate;
  constexpr double kMaxSecs = 9.0e12;  // keep the us conversion in-range
  if (secs >= kMaxSecs) return Duration::max();
  return Duration{static_cast<std::int64_t>(std::ceil(secs * 1e6))};
}

// ---------------------------------------------------------------------------
// EnergyGovernor.
// ---------------------------------------------------------------------------

EnergyGovernor::EnergyGovernor(sim::Scheduler& scheduler, const PowerTimeline& timeline,
                               HarvesterConfig config)
    : scheduler_(scheduler),
      timeline_(timeline),
      harvester_(config),
      settled_at_(scheduler.now()) {}

void EnergyGovernor::settle() {
  const TimePoint now = scheduler_.now();
  if (now <= settled_at_) return;
  const Joules consumed = timeline_.energy_between(settled_at_, now);
  harvester_.advance(now - settled_at_, consumed);
  settled_at_ = now;
  ++stats_.settles;
}

Joules EnergyGovernor::charge() {
  settle();
  return harvester_.charge();
}

Joules EnergyGovernor::projected_charge(TimePoint at) const {
  if (at <= settled_at_) return harvester_.charge();
  const Joules consumed = timeline_.energy_between(settled_at_, at);
  const double in = harvester_.net_input().value * to_seconds(at - settled_at_);
  return Joules{std::clamp(harvester_.charge().value + in - consumed.value, 0.0,
                           harvester_.capacity().value)};
}

Duration EnergyGovernor::time_until(Joules target) {
  settle();
  // The load draws its current phase's power alongside the harvest; a
  // recharging device is browned out, so the only competing draw is the
  // harvester's own leakage, already inside net_input().
  return harvester_.time_to_reach(target);
}

bool EnergyGovernor::check_brown_out() {
  settle();
  if (!harvester_.empty()) return false;
  ++stats_.brown_outs;
  if (on_brown_out_) on_brown_out_();
  return true;
}

void EnergyGovernor::fault_brown_out() {
  settle();
  harvester_.drain_all();
  ++stats_.brown_outs;
  if (on_brown_out_) on_brown_out_();
}

void EnergyGovernor::fault_harvest_push(double scale) {
  settle();  // integrate the pre-fault rate up to the fault edge
  harvester_.push_fade(scale);
  ++stats_.fades_applied;
  if (on_harvest_changed_) on_harvest_changed_();
}

void EnergyGovernor::fault_harvest_pop(double scale) {
  settle();
  harvester_.pop_fade(scale);
  if (on_harvest_changed_) on_harvest_changed_();
}

}  // namespace wile::power
