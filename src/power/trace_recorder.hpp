// Simulated bench multimeter.
//
// The paper measures current with a Keysight 34465A "capable of taking
// 50,000 samples per second" in series with the 3.3 V supply (§5.1,
// Figure 2). TraceRecorder samples a PowerTimeline the same way and
// produces the time/current series plotted in Figure 3, plus simple
// trace analytics (peaks, per-phase averages) used by the benches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "power/timeline.hpp"

namespace wile::power {

struct TraceSample {
  double time_s = 0.0;
  double current_ma = 0.0;
};

class TraceRecorder {
 public:
  /// 50 kS/s, like the Keysight 34465A configuration in the paper.
  static constexpr double kDefaultSampleRateHz = 50'000.0;

  explicit TraceRecorder(double sample_rate_hz = kDefaultSampleRateHz)
      : sample_rate_hz_(sample_rate_hz) {}

  /// Sample the timeline over [from, to). Times in the output are
  /// relative to `from`.
  [[nodiscard]] std::vector<TraceSample> record(const PowerTimeline& timeline,
                                                TimePoint from, TimePoint to) const;

  /// Reduce a dense trace for printing/plotting: keep `max_points` by
  /// max-decimation per bucket (preserves spikes, unlike averaging —
  /// a 100 us TX burst must stay visible in a 2 s trace).
  static std::vector<TraceSample> decimate(const std::vector<TraceSample>& trace,
                                           std::size_t max_points);

  /// Serialise as CSV ("time_s,current_mA\n...") for EXPERIMENTS.md or
  /// external plotting.
  static std::string to_csv(const std::vector<TraceSample>& trace);

  static double peak_ma(const std::vector<TraceSample>& trace);
  static double mean_ma(const std::vector<TraceSample>& trace);

 private:
  double sample_rate_hz_;
};

}  // namespace wile::power
