#include "power/trace_recorder.hpp"

#include <algorithm>
#include <cstdio>

namespace wile::power {

std::vector<TraceSample> TraceRecorder::record(const PowerTimeline& timeline, TimePoint from,
                                               TimePoint to) const {
  std::vector<TraceSample> out;
  if (to <= from || sample_rate_hz_ <= 0.0) return out;
  const double period_us = 1e6 / sample_rate_hz_;
  const double span_us = static_cast<double>((to - from).count());
  const auto n = static_cast<std::size_t>(span_us / period_us);
  out.reserve(n + 1);
  for (std::size_t i = 0; i <= n; ++i) {
    const double t_us = static_cast<double>(i) * period_us;
    const TimePoint t = from + Duration{static_cast<std::int64_t>(t_us)};
    if (t >= to) break;
    out.push_back(TraceSample{t_us / 1e6, in_milliamps(timeline.current_at(t))});
  }
  return out;
}

std::vector<TraceSample> TraceRecorder::decimate(const std::vector<TraceSample>& trace,
                                                 std::size_t max_points) {
  if (trace.size() <= max_points || max_points == 0) return trace;
  std::vector<TraceSample> out;
  out.reserve(max_points);
  const double stride = static_cast<double>(trace.size()) / static_cast<double>(max_points);
  for (std::size_t b = 0; b < max_points; ++b) {
    const auto lo = static_cast<std::size_t>(static_cast<double>(b) * stride);
    auto hi = static_cast<std::size_t>(static_cast<double>(b + 1) * stride);
    hi = std::min(hi, trace.size());
    if (lo >= hi) continue;
    // Keep the max-current sample in the bucket so spikes survive.
    auto it = std::max_element(trace.begin() + static_cast<std::ptrdiff_t>(lo),
                               trace.begin() + static_cast<std::ptrdiff_t>(hi),
                               [](const TraceSample& a, const TraceSample& b2) {
                                 return a.current_ma < b2.current_ma;
                               });
    out.push_back(*it);
  }
  return out;
}

std::string TraceRecorder::to_csv(const std::vector<TraceSample>& trace) {
  std::string out = "time_s,current_mA\n";
  char line[64];
  for (const auto& s : trace) {
    std::snprintf(line, sizeof(line), "%.6f,%.4f\n", s.time_s, s.current_ma);
    out += line;
  }
  return out;
}

double TraceRecorder::peak_ma(const std::vector<TraceSample>& trace) {
  double peak = 0.0;
  for (const auto& s : trace) peak = std::max(peak, s.current_ma);
  return peak;
}

double TraceRecorder::mean_ma(const std::vector<TraceSample>& trace) {
  if (trace.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& s : trace) sum += s.current_ma;
  return sum / static_cast<double>(trace.size());
}

}  // namespace wile::power
