#include "power/devices.hpp"

namespace wile::power {
// Profiles are constant data; this TU anchors the header in the library.
}  // namespace wile::power
