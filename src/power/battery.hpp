// Battery-lifetime projection helpers.
//
// The paper's motivation is battery life ("BLE modules can run on a
// small button battery for over a year", §5.4). These helpers turn the
// simulator's measured average power into lifetime estimates, with the
// two non-idealities that matter at microamp loads: usable-capacity
// derating and self-discharge.
#pragma once

#include <limits>

#include "util/units.hpp"

namespace wile::power {

struct BatteryModel {
  /// Nameplate capacity in milliamp-hours (CR2032 ≈ 225 mAh).
  double capacity_mah = 225.0;
  /// Nominal cell voltage the load runs from.
  Volts voltage{3.0};
  /// Fraction of the nameplate capacity actually extractable before the
  /// voltage sags below the device's brown-out (typ. 0.8-0.9 for coin
  /// cells at low drain).
  double usable_fraction = 0.85;
  /// Self-discharge, fraction of capacity per year (coin cells ~1 %/yr).
  double self_discharge_per_year = 0.01;

  /// Total usable energy.
  [[nodiscard]] Joules usable_energy() const {
    return Joules{capacity_mah * 1e-3 * 3600.0 * voltage.value * usable_fraction};
  }

  /// Equivalent constant power drained by self-discharge.
  [[nodiscard]] Watts self_discharge_power() const {
    constexpr double kSecondsPerYear = 365.25 * 24 * 3600;
    const Joules per_year{capacity_mah * 1e-3 * 3600.0 * voltage.value *
                          self_discharge_per_year};
    return Watts{per_year.value / kSecondsPerYear};
  }

  /// Projected lifetime under a constant average load. Returns seconds;
  /// callers format as days/years. Zero (or negative, i.e. harvesting)
  /// net drain means the cell never empties: +infinity, not 0.
  [[nodiscard]] double lifetime_seconds(Watts average_load) const {
    const Watts total = average_load + self_discharge_power();
    if (total.value <= 0.0) return std::numeric_limits<double>::infinity();
    return usable_energy().value / total.value;
  }

  [[nodiscard]] double lifetime_days(Watts average_load) const {
    return lifetime_seconds(average_load) / 86'400.0;
  }
  [[nodiscard]] double lifetime_years(Watts average_load) const {
    return lifetime_seconds(average_load) / (365.25 * 86'400.0);
  }

  /// Common cells.
  static BatteryModel cr2032() { return BatteryModel{}; }
  static BatteryModel aa_pair() {
    // Two alkaline AAs in series: ~2500 mAh at 3.0 V, more usable
    // capacity, slightly higher self-discharge.
    BatteryModel b;
    b.capacity_mah = 2500.0;
    b.usable_fraction = 0.9;
    b.self_discharge_per_year = 0.02;
    return b;
  }
};

}  // namespace wile::power
