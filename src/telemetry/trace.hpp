// Structured protocol-phase tracing.
//
// Components emit begin/end span events (wake -> sample -> encode ->
// CSMA -> TX -> sleep) and instants, timestamped with the simulated
// clock they already run on — so a trace is exactly as deterministic as
// the simulation that produced it, and two runs with the same seed emit
// byte-identical traces. The tracer is a bounded flat buffer: recording
// is an enabled-flag check plus a struct append, nothing else; disabled
// (the default) it is a single predictable branch, which is why every
// component can keep its trace hooks compiled in.
//
// Spans are identified by (node, phase); overlapping spans of different
// phases on one node are fine (a TX span inside a cycle span), repeated
// begins of the same phase just produce repeated events — the tracer
// records what happened, pairing is the exporter's/consumer's job.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/units.hpp"

namespace wile::telemetry {

/// Protocol phases of the Wi-LE duty cycle plus generic infrastructure
/// phases. Keep the enumerators stable: exported traces carry the name.
enum class Phase : std::uint8_t {
  Cycle,     // whole wake->sleep span
  Wake,      // boot + radio init
  Sample,    // payload acquisition (the provider callback)
  Encode,    // codec/beacon assembly
  Csma,      // deferral + backoff before injection
  Tx,        // frames on the air
  RxWindow,  // two-way listen window
  Sleep,     // shutdown + deep sleep entry
  Fault,     // fault-injection window
  BrownOut,  // harvester ran dry; cycle checkpointed and suspended
  Recharge,  // capacitor back above the resume threshold
  Other,
  Drop,      // a queued reading was destroyed (retry budget / queue full)
};

[[nodiscard]] std::string_view phase_name(Phase p);

enum class TraceEventKind : std::uint8_t { Begin, End, Instant };

struct TraceEvent {
  std::int64_t at_us = 0;
  std::uint32_t node = 0;
  Phase phase = Phase::Other;
  TraceEventKind kind = TraceEventKind::Instant;
};

class Tracer {
 public:
  /// Events retained before new ones are counted as dropped (bounds
  /// memory on fleet-sized runs; 1M events = 16 MB).
  static constexpr std::size_t kDefaultMaxEvents = 1u << 20;

  [[nodiscard]] bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }
  void set_max_events(std::size_t n) { max_events_ = n; }

  void begin(TimePoint at, std::uint32_t node, Phase phase) {
    emit(at, node, phase, TraceEventKind::Begin);
  }
  void end(TimePoint at, std::uint32_t node, Phase phase) {
    emit(at, node, phase, TraceEventKind::End);
  }
  void instant(TimePoint at, std::uint32_t node, Phase phase) {
    emit(at, node, phase, TraceEventKind::Instant);
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  void clear() {
    events_.clear();
    dropped_ = 0;
  }

 private:
  void emit(TimePoint at, std::uint32_t node, Phase phase, TraceEventKind kind) {
    if (!enabled_) return;
    if (events_.size() >= max_events_) {
      ++dropped_;
      return;
    }
    events_.push_back({at.us(), node, phase, kind});
  }

  bool enabled_ = false;
  std::size_t max_events_ = kDefaultMaxEvents;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

}  // namespace wile::telemetry
