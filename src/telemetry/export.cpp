#include "telemetry/export.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace wile::telemetry {

namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

void append_f64(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_key(std::string& out, std::string_view key) {
  out.push_back('"');
  append_escaped(out, key);
  out += "\": ";
}

void append_metric_value(std::string& out, const MetricValue& v) {
  if (v.kind == MetricKind::Counter) {
    append_u64(out, v.count);
  } else {
    append_f64(out, v.value);
  }
}

void append_histogram(std::string& out, const Histogram& h) {
  out += "{\"count\": ";
  append_u64(out, h.count);
  out += ", \"sum\": ";
  append_u64(out, h.sum);
  out += ", \"min\": ";
  append_u64(out, h.min);
  out += ", \"max\": ";
  append_u64(out, h.max);
  out += ", \"mean\": ";
  append_f64(out, h.mean());
  out += ", \"buckets\": {";
  bool first = true;
  for (std::size_t k = 0; k < h.buckets.size(); ++k) {
    if (h.buckets[k] == 0) continue;
    if (!first) out += ", ";
    first = false;
    out.push_back('"');
    append_u64(out, k);
    out += "\": ";
    append_u64(out, h.buckets[k]);
  }
  out += "}}";
}

/// Split "node.<id>.<suffix>" -> true + id + suffix; false otherwise.
bool split_node_metric(std::string_view name, std::uint64_t* id,
                       std::string_view* suffix) {
  constexpr std::string_view kPrefix = "node.";
  if (name.substr(0, kPrefix.size()) != kPrefix) return false;
  const std::string_view rest = name.substr(kPrefix.size());
  const std::size_t dot = rest.find('.');
  if (dot == std::string_view::npos || dot == 0) return false;
  std::uint64_t value = 0;
  for (char c : rest.substr(0, dot)) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *id = value;
  *suffix = rest.substr(dot + 1);
  return true;
}

void append_metrics_object(std::string& out, const Snapshot& s, bool nodes) {
  out.push_back('{');
  bool first = true;
  std::uint64_t id = 0;
  std::string_view suffix;
  for (const MetricValue& v : s.values) {
    if (v.kind == MetricKind::HistogramKind) continue;  // own section
    if (split_node_metric(v.name, &id, &suffix) != nodes) continue;
    if (!first) out += ", ";
    first = false;
    append_key(out, v.name);
    append_metric_value(out, v);
  }
  out.push_back('}');
}

}  // namespace

std::string to_json(const Snapshot& snapshot, const std::vector<Snapshot>& samples,
                    const ExportMeta& meta, const Tracer* tracer,
                    bool include_trace_events) {
  std::string out;
  out.reserve(4096 + snapshot.values.size() * 48);
  out += "{\n  \"schema\": \"wile-telemetry-v1\",\n  \"bench\": \"";
  append_escaped(out, meta.bench);
  out += "\",\n  \"sim_time_us\": ";
  append_i64(out, snapshot.at.us());
  out += ",\n  \"meta\": {";
  bool first = true;
  for (const auto& [k, v] : meta.ints) {
    if (!first) out += ", ";
    first = false;
    append_key(out, k);
    append_i64(out, v);
  }
  for (const auto& [k, v] : meta.doubles) {
    if (!first) out += ", ";
    first = false;
    append_key(out, k);
    append_f64(out, v);
  }
  out += "},\n  \"aggregates\": ";
  {
    std::string agg;
    bool first_agg = true;
    std::uint64_t id = 0;
    std::string_view suffix;
    agg.push_back('{');
    for (const MetricValue& v : snapshot.values) {
      if (v.kind == MetricKind::HistogramKind) continue;
      if (split_node_metric(v.name, &id, &suffix)) continue;
      if (!first_agg) agg += ", ";
      first_agg = false;
      append_key(agg, v.name);
      append_metric_value(agg, v);
    }
    agg.push_back('}');
    out += agg;
  }

  out += ",\n  \"histograms\": {";
  first = true;
  for (const MetricValue& v : snapshot.values) {
    if (v.kind != MetricKind::HistogramKind) continue;
    if (!first) out += ", ";
    first = false;
    append_key(out, v.name);
    append_histogram(out, v.histogram);
  }
  out += "},\n  \"nodes\": [";

  // Group per-node metrics by id, preserving first-appearance order
  // (registration attaches nodes in ascending NodeId order).
  {
    std::vector<std::uint64_t> order;
    std::uint64_t id = 0;
    std::string_view suffix;
    for (const MetricValue& v : snapshot.values) {
      if (v.kind == MetricKind::HistogramKind) continue;
      if (!split_node_metric(v.name, &id, &suffix)) continue;
      if (order.empty() || order.back() != id) {
        bool seen = false;
        for (std::uint64_t o : order) {
          if (o == id) {
            seen = true;
            break;
          }
        }
        if (!seen) order.push_back(id);
      }
    }
    bool first_node = true;
    for (std::uint64_t node : order) {
      if (!first_node) out += ",";
      first_node = false;
      out += "\n    {\"node\": ";
      append_u64(out, node);
      out += ", \"metrics\": {";
      bool first_metric = true;
      for (const MetricValue& v : snapshot.values) {
        if (v.kind == MetricKind::HistogramKind) continue;
        if (!split_node_metric(v.name, &id, &suffix) || id != node) continue;
        if (!first_metric) out += ", ";
        first_metric = false;
        append_key(out, suffix);
        append_metric_value(out, v);
      }
      out += "}}";
    }
    if (!order.empty()) out += "\n  ";
  }
  out += "],\n  \"samples\": [";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (i != 0) out += ",";
    out += "\n    {\"t_us\": ";
    append_i64(out, samples[i].at.us());
    out += ", \"metrics\": ";
    append_metrics_object(out, samples[i], /*nodes=*/false);
    out += "}";
  }
  if (!samples.empty()) out += "\n  ";
  out += "],\n  \"trace\": {\"recorded\": ";
  append_u64(out, tracer != nullptr ? tracer->events().size() : 0);
  out += ", \"dropped\": ";
  append_u64(out, tracer != nullptr ? tracer->dropped() : 0);
  if (tracer != nullptr && include_trace_events) {
    out += ", \"events\": [";
    for (std::size_t i = 0; i < tracer->events().size(); ++i) {
      const TraceEvent& e = tracer->events()[i];
      if (i != 0) out += ", ";
      out += "{\"t_us\": ";
      append_i64(out, e.at_us);
      out += ", \"node\": ";
      append_u64(out, e.node);
      out += ", \"phase\": \"";
      out += phase_name(e.phase);
      out += "\", \"kind\": \"";
      out += e.kind == TraceEventKind::Begin
                 ? "begin"
                 : (e.kind == TraceEventKind::End ? "end" : "instant");
      out += "\"}";
    }
    out += "]";
  }
  out += "}\n}\n";
  return out;
}

std::string to_csv(const Snapshot& snapshot) {
  std::string out = "name,kind,value\n";
  for (const MetricValue& v : snapshot.values) {
    switch (v.kind) {
      case MetricKind::Counter:
        out += v.name;
        out += ",counter,";
        append_u64(out, v.count);
        out.push_back('\n');
        break;
      case MetricKind::Gauge:
        out += v.name;
        out += ",gauge,";
        append_f64(out, v.value);
        out.push_back('\n');
        break;
      case MetricKind::HistogramKind:
        out += v.name;
        out += ".count,histogram,";
        append_u64(out, v.histogram.count);
        out.push_back('\n');
        out += v.name;
        out += ".sum,histogram,";
        append_u64(out, v.histogram.sum);
        out.push_back('\n');
        out += v.name;
        out += ".mean,histogram,";
        append_f64(out, v.histogram.mean());
        out.push_back('\n');
        break;
    }
  }
  return out;
}

std::string samples_csv(const std::vector<Snapshot>& samples) {
  std::string out = "t_us";
  if (samples.empty()) return out + "\n";
  for (const MetricValue& v : samples.front().values) {
    if (v.kind == MetricKind::HistogramKind) continue;
    out.push_back(',');
    out += v.name;
  }
  out.push_back('\n');
  for (const Snapshot& s : samples) {
    append_i64(out, s.at.us());
    for (const MetricValue& v : s.values) {
      if (v.kind == MetricKind::HistogramKind) continue;
      out.push_back(',');
      if (v.kind == MetricKind::Counter) {
        append_u64(out, v.count);
      } else {
        append_f64(out, v.value);
      }
    }
    out.push_back('\n');
  }
  return out;
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool wrote = std::fwrite(content.data(), 1, content.size(), f) == content.size();
  const bool closed = std::fclose(f) == 0;
  return wrote && closed;
}

}  // namespace wile::telemetry
