// One metrics pipeline for every bench, example and test.
//
// The simulator's components each keep a small struct of plain counters
// (Medium::Stats, ReceiverStats, GatewayStats, ...). Those structs stay
// exactly where they are — they ARE the storage — and the registry binds
// hierarchical names ("medium.transmissions", "node.7.sender.cycles")
// to pointers at those slots. Collection is therefore pull-only: the
// protocol hot path increments the same plain fields it always did, no
// string lookups, no indirection, no branches; a snapshot walks the
// bound pointers when (and only when) somebody asks. With no registry
// attached nothing changes at all, which is what makes telemetry
// free when disabled.
//
// Three metric kinds:
//   * counter — monotonically increasing u64, bound to a slot or to a
//     closure (for accessors that return by value, e.g.
//     Scheduler::events_run());
//   * gauge   — instantaneous double, bound to a slot or a closure
//     (e.g. integrated energy from a PowerTimeline);
//   * histogram — registry-owned log2-bucketed distribution; components
//     that want one ask the registry for a slot pointer at registration
//     time and record through it, again without name lookups.
//
// Naming scheme (see DESIGN.md §10): aggregate metrics are
// "<subsystem>.<metric>" ("medium.deliveries", "scheduler.events_run");
// per-node metrics are "node.<NodeId>.<component>.<metric>"
// ("node.42.sender.tx.beacons"). Exporters group on that prefix.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/units.hpp"

namespace wile::telemetry {

/// Registry-owned distribution: 64 power-of-two buckets (bucket k counts
/// samples with bit_width(value) == k, i.e. value in [2^(k-1), 2^k)),
/// plus exact count/sum/min/max. Fixed footprint, O(1) record.
struct Histogram {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::array<std::uint64_t, 64> buckets{};

  void record(std::uint64_t value) {
    if (count == 0 || value < min) min = value;
    if (value > max) max = value;
    ++count;
    sum += value;
    int k = 0;
    while (value >> k != 0 && k < 63) ++k;  // bit width, bucket 0 = value 0
    ++buckets[static_cast<std::size_t>(k)];
  }

  [[nodiscard]] double mean() const {
    return count > 0 ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
  }
};

enum class MetricKind : std::uint8_t { Counter, Gauge, HistogramKind };

/// One collected value (see MetricsRegistry::snapshot).
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::Counter;
  std::uint64_t count = 0;   // Counter
  double value = 0.0;        // Gauge
  Histogram histogram;       // HistogramKind (copied at snapshot time)
};

/// A whole-sim snapshot: every registered metric read at one instant of
/// the simulated clock, in registration order (deterministic for a
/// deterministic setup path — which every scenario here is).
struct Snapshot {
  TimePoint at{};
  std::vector<MetricValue> values;

  /// Linear lookup (snapshots are read by tests and exporters, not hot
  /// paths). Returns nullptr when the name was never registered.
  [[nodiscard]] const MetricValue* find(std::string_view name) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // --- registration ----------------------------------------------------------
  // Binding never copies the value; the registry reads through the
  // pointer (or calls the closure) at snapshot time. The bound slot must
  // outlive the registry or be unbound first.

  void bind_counter(std::string name, const std::uint64_t* slot);
  void bind_counter_fn(std::string name, std::function<std::uint64_t()> fn);
  void bind_gauge(std::string name, const double* slot);
  void bind_gauge_fn(std::string name, std::function<double()> fn);

  /// Create (or return the existing) registry-owned histogram. The
  /// returned pointer is stable for the registry's lifetime; record
  /// through it without any further registry involvement.
  Histogram* histogram(std::string name);

  /// Drop every metric whose name starts with `prefix` (a component
  /// being destroyed before the registry unbinds its slots this way).
  void unbind_prefix(std::string_view prefix);

  // --- collection ------------------------------------------------------------

  [[nodiscard]] std::size_t size() const { return metrics_.size(); }
  [[nodiscard]] bool contains(std::string_view name) const;

  /// Read one counter by name (0 if absent / not a counter).
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;
  /// Read one gauge by name (0.0 if absent / not a gauge).
  [[nodiscard]] double gauge_value(std::string_view name) const;

  /// Read every metric at simulated time `at`.
  [[nodiscard]] Snapshot snapshot(TimePoint at) const;

  /// Snapshot restricted to names for which `keep` returns true (the
  /// periodic sampler uses this to record aggregates only).
  [[nodiscard]] Snapshot snapshot_filtered(
      TimePoint at, const std::function<bool(std::string_view)>& keep) const;

 private:
  struct Metric {
    std::string name;
    MetricKind kind = MetricKind::Counter;
    const std::uint64_t* u64_slot = nullptr;
    const double* f64_slot = nullptr;
    std::function<std::uint64_t()> u64_fn;
    std::function<double()> f64_fn;
    Histogram* hist = nullptr;  // into histograms_
  };

  void add(Metric m);
  [[nodiscard]] const Metric* find_metric(std::string_view name) const;
  [[nodiscard]] MetricValue read(const Metric& m) const;

  std::vector<Metric> metrics_;  // registration order
  std::unordered_map<std::string, std::size_t> index_;
  std::deque<Histogram> histograms_;  // deque: stable addresses
};

}  // namespace wile::telemetry
