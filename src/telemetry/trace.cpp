#include "telemetry/trace.hpp"

namespace wile::telemetry {

std::string_view phase_name(Phase p) {
  switch (p) {
    case Phase::Cycle: return "cycle";
    case Phase::Wake: return "wake";
    case Phase::Sample: return "sample";
    case Phase::Encode: return "encode";
    case Phase::Csma: return "csma";
    case Phase::Tx: return "tx";
    case Phase::RxWindow: return "rx_window";
    case Phase::Sleep: return "sleep";
    case Phase::Fault: return "fault";
    case Phase::BrownOut: return "brown_out";
    case Phase::Recharge: return "recharge";
    case Phase::Drop: return "drop";
    case Phase::Other: break;
  }
  return "other";
}

}  // namespace wile::telemetry
