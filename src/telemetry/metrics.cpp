#include "telemetry/metrics.hpp"

#include <stdexcept>
#include <utility>

namespace wile::telemetry {

const MetricValue* Snapshot::find(std::string_view name) const {
  for (const MetricValue& v : values) {
    if (v.name == name) return &v;
  }
  return nullptr;
}

void MetricsRegistry::add(Metric m) {
  if (index_.count(m.name) != 0) {
    throw std::logic_error("MetricsRegistry: duplicate metric name: " + m.name);
  }
  index_.emplace(m.name, metrics_.size());
  metrics_.push_back(std::move(m));
}

void MetricsRegistry::bind_counter(std::string name, const std::uint64_t* slot) {
  Metric m;
  m.name = std::move(name);
  m.kind = MetricKind::Counter;
  m.u64_slot = slot;
  add(std::move(m));
}

void MetricsRegistry::bind_counter_fn(std::string name,
                                      std::function<std::uint64_t()> fn) {
  Metric m;
  m.name = std::move(name);
  m.kind = MetricKind::Counter;
  m.u64_fn = std::move(fn);
  add(std::move(m));
}

void MetricsRegistry::bind_gauge(std::string name, const double* slot) {
  Metric m;
  m.name = std::move(name);
  m.kind = MetricKind::Gauge;
  m.f64_slot = slot;
  add(std::move(m));
}

void MetricsRegistry::bind_gauge_fn(std::string name, std::function<double()> fn) {
  Metric m;
  m.name = std::move(name);
  m.kind = MetricKind::Gauge;
  m.f64_fn = std::move(fn);
  add(std::move(m));
}

Histogram* MetricsRegistry::histogram(std::string name) {
  if (auto it = index_.find(name); it != index_.end()) {
    Metric& existing = metrics_[it->second];
    if (existing.kind != MetricKind::HistogramKind) {
      throw std::logic_error("MetricsRegistry: " + name + " is not a histogram");
    }
    return existing.hist;
  }
  histograms_.emplace_back();
  Metric m;
  m.name = std::move(name);
  m.kind = MetricKind::HistogramKind;
  m.hist = &histograms_.back();
  Histogram* slot = m.hist;
  add(std::move(m));
  return slot;
}

void MetricsRegistry::unbind_prefix(std::string_view prefix) {
  std::vector<Metric> kept;
  kept.reserve(metrics_.size());
  for (Metric& m : metrics_) {
    if (m.name.size() >= prefix.size() &&
        std::string_view{m.name}.substr(0, prefix.size()) == prefix) {
      continue;  // histograms stay alive in histograms_; only the name goes
    }
    kept.push_back(std::move(m));
  }
  metrics_ = std::move(kept);
  index_.clear();
  for (std::size_t i = 0; i < metrics_.size(); ++i) index_.emplace(metrics_[i].name, i);
}

bool MetricsRegistry::contains(std::string_view name) const {
  return find_metric(name) != nullptr;
}

const MetricsRegistry::Metric* MetricsRegistry::find_metric(
    std::string_view name) const {
  auto it = index_.find(std::string{name});
  return it == index_.end() ? nullptr : &metrics_[it->second];
}

MetricValue MetricsRegistry::read(const Metric& m) const {
  MetricValue v;
  v.name = m.name;
  v.kind = m.kind;
  switch (m.kind) {
    case MetricKind::Counter:
      v.count = m.u64_slot != nullptr ? *m.u64_slot : (m.u64_fn ? m.u64_fn() : 0);
      break;
    case MetricKind::Gauge:
      v.value = m.f64_slot != nullptr ? *m.f64_slot : (m.f64_fn ? m.f64_fn() : 0.0);
      break;
    case MetricKind::HistogramKind:
      v.histogram = *m.hist;
      break;
  }
  return v;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  const Metric* m = find_metric(name);
  if (m == nullptr || m->kind != MetricKind::Counter) return 0;
  return read(*m).count;
}

double MetricsRegistry::gauge_value(std::string_view name) const {
  const Metric* m = find_metric(name);
  if (m == nullptr || m->kind != MetricKind::Gauge) return 0.0;
  return read(*m).value;
}

Snapshot MetricsRegistry::snapshot(TimePoint at) const {
  Snapshot s;
  s.at = at;
  s.values.reserve(metrics_.size());
  for (const Metric& m : metrics_) s.values.push_back(read(m));
  return s;
}

Snapshot MetricsRegistry::snapshot_filtered(
    TimePoint at, const std::function<bool(std::string_view)>& keep) const {
  Snapshot s;
  s.at = at;
  for (const Metric& m : metrics_) {
    if (keep(m.name)) s.values.push_back(read(m));
  }
  return s;
}

}  // namespace wile::telemetry
