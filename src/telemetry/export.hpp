// Snapshot serialization: the BENCH_*.json telemetry schema and a flat
// CSV form.
//
// The JSON schema ("wile-telemetry-v1", checked in CI by
// tools/check_bench_schema.py) serializes one whole-sim snapshot:
//
//   {
//     "schema": "wile-telemetry-v1",
//     "bench": "<name>",
//     "sim_time_us": <final snapshot clock>,
//     "meta": { ... caller-supplied run parameters ... },
//     "aggregates": { "<metric>": <int|float>, ... },   // non-node metrics
//     "histograms": { "<metric>": {"count","sum","min","max","mean",
//                                  "buckets": {"<log2 bucket>": n}} },
//     "nodes": [ {"node": <id>, "metrics": { "<suffix>": <value> }} ],
//     "samples": [ {"t_us": <t>, "metrics": { ... }} ],
//     "trace": {"recorded": n, "dropped": n [, "events": [...]]}
//   }
//
// Formatting is deterministic: metrics appear in registration order,
// integers as integers, doubles via %.17g (round-trip exact), so two
// same-seed runs export byte-identical files — pinned by
// tests/test_telemetry.cpp.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace wile::telemetry {

/// Caller-supplied run parameters, emitted under "meta".
struct ExportMeta {
  std::string bench;
  std::vector<std::pair<std::string, std::int64_t>> ints;
  std::vector<std::pair<std::string, double>> doubles;
};

/// Serialize a final snapshot (+ optional time-series samples and trace)
/// to the wile-telemetry-v1 JSON document.
[[nodiscard]] std::string to_json(const Snapshot& snapshot,
                                  const std::vector<Snapshot>& samples,
                                  const ExportMeta& meta,
                                  const Tracer* tracer = nullptr,
                                  bool include_trace_events = false);

/// Flat CSV: "name,kind,value" per metric; histograms expand to
/// .count/.sum/.mean rows.
[[nodiscard]] std::string to_csv(const Snapshot& snapshot);

/// Time-series CSV: one row per sample, one column per metric of the
/// first sample (later samples must share its shape, which
/// PeriodicSampler guarantees).
[[nodiscard]] std::string samples_csv(const std::vector<Snapshot>& samples);

/// Write `content` to `path`; false (with errno intact) on failure.
bool write_file(const std::string& path, const std::string& content);

}  // namespace wile::telemetry
