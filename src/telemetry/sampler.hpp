// Periodic whole-registry sampling on the simulated clock.
//
// A PeriodicSampler schedules itself on the event scheduler and records
// a filtered snapshot every `period` of simulated time — the time-series
// rows that exporters emit as "samples". It is a template over the
// scheduler type so the telemetry library stays below sim in the layer
// diagram (telemetry depends only on util; sim components and the
// ScenarioBuilder instantiate the sampler with the real sim::Scheduler).
//
// Sampling records aggregates only by default (names not under
// "node."): a fleet of 100k devices would otherwise serialize 100k rows
// per tick. The per-node detail belongs to the final snapshot, which is
// taken once.
#pragma once

#include <functional>
#include <string_view>
#include <utility>
#include <vector>

#include "telemetry/metrics.hpp"
#include "util/units.hpp"

namespace wile::telemetry {

/// Default sample filter: keep aggregate metrics, skip per-node ones.
inline bool aggregate_metrics_only(std::string_view name) {
  return name.substr(0, 5) != "node.";
}

template <class SchedulerT>
class PeriodicSampler {
 public:
  PeriodicSampler(SchedulerT& scheduler, const MetricsRegistry& registry,
                  Duration period)
      : scheduler_(scheduler), registry_(registry), period_(period) {}

  /// Install the recurring sampling event (idempotent). The first sample
  /// is taken one period from now.
  void start() {
    if (running_ || period_.count() <= 0) return;
    running_ = true;
    schedule_next();
  }

  void stop() { running_ = false; }

  void set_filter(std::function<bool(std::string_view)> keep) {
    keep_ = std::move(keep);
  }

  [[nodiscard]] const std::vector<Snapshot>& samples() const { return samples_; }

 private:
  void schedule_next() {
    scheduler_.schedule_in(period_, [this] {
      if (!running_) return;
      samples_.push_back(registry_.snapshot_filtered(scheduler_.now(), keep_));
      schedule_next();
    });
  }

  SchedulerT& scheduler_;
  const MetricsRegistry& registry_;
  Duration period_;
  bool running_ = false;
  std::function<bool(std::string_view)> keep_ = aggregate_metrics_only;
  std::vector<Snapshot> samples_;
};

}  // namespace wile::telemetry
