#include "sta/station.hpp"

#include "crypto/pbkdf2.hpp"
#include "net/llc.hpp"
#include "util/log.hpp"

namespace wile::sta {

using dot11::FrameControl;
using dot11::MgmtSubtype;

namespace {
// Phase labels exactly as in the legend of Figure 3a.
constexpr const char* kPhaseSleep = "Sleep";
constexpr const char* kPhaseInit = "MC/WiFi init";
constexpr const char* kPhaseAssoc = "Probe/Auth./Associate";
constexpr const char* kPhaseDhcp = "DHCP/ARP";
constexpr const char* kPhaseTx = "Tx";
}  // namespace

Station::Station(sim::Scheduler& scheduler, sim::Medium& medium, sim::Position position,
                 StationConfig config, Rng rng)
    : scheduler_(scheduler),
      medium_(medium),
      config_(std::move(config)),
      rng_(rng),
      timeline_(config_.power.supply),
      tracker_(scheduler, timeline_, config_.power.radio_tx, config_.power.tx_ramp) {
  node_id_ = medium_.attach(this, position);
  sim::CsmaConfig csma_cfg;
  csma_cfg.tx_power_dbm = config_.tx_power_dbm;
  csma_ = std::make_unique<sim::Csma>(scheduler_, medium_, node_id_, rng_.fork(), csma_cfg);
  csma_->set_tx_listener([this](Duration airtime, phy::WifiRate rate) {
    ++stats_.mac_frames_sent;
    const bool legacy = phy::rate_info(rate).modulation != phy::Modulation::HtMixed;
    tracker_.on_tx_start(airtime,
                         legacy ? std::optional<Amps>{config_.power.radio_tx_legacy}
                                : std::nullopt);
  });
  if (!config_.passphrase.empty()) {
    // The ESP32 caches the PMK in NVS; derive once, not per connection.
    pmk_ = crypto::wpa2_psk(config_.passphrase, config_.ssid);
  }
  timeline_.set_current(scheduler_.now(), config_.power.deep_sleep, kPhaseSleep);
  if (config_.wur) {
    // WUR companion: derive the 12-bit ID from the MAC's low bytes when
    // unset and add the uW listen draw over the whole timeline.
    if (config_.wur_id == 0) {
      const auto& o = config_.mac.octets();
      config_.wur_id =
          static_cast<std::uint16_t>(((o[4] << 8) | o[5]) & phy::WurPhy::kMaxId);
    }
    tracker_.set_overlay(config_.wur->listen);
    tracker_.set_phase(config_.power.deep_sleep, kPhaseSleep);
  }
}

bool Station::radio_on() const {
  switch (phase_) {
    case Phase::Probe:
    case Phase::Auth:
    case Phase::Assoc:
    case Phase::Handshake:
    case Phase::Dhcp:
    case Phase::Arp:
    case Phase::SendData:
    case Phase::PsBeaconRx:
    case Phase::PsSend:
      return true;
    default:
      return false;
  }
}

bool Station::rx_enabled() const {
  if (config_.wur && phase_ == Phase::DeepSleep) {
    // Only the uW companion receiver is listening.
    return !medium_.transmitting(node_id_);
  }
  return radio_on() && !medium_.transmitting(node_id_);
}

// ---------------------------------------------------------------------------
// Public entry points.
// ---------------------------------------------------------------------------

void Station::run_duty_cycle_transmission(Bytes payload, CycleCallback done) {
  if (phase_ != Phase::DeepSleep) {
    throw std::logic_error("Station: duty-cycle transmission requires deep sleep");
  }
  pending_payload_ = std::move(payload);
  cycle_done_ = std::move(done);
  connect_then_ps_ = false;
  begin_wake(/*full_connect=*/true);
}

void Station::connect_and_enter_power_save(ReadyCallback ready) {
  if (phase_ != Phase::DeepSleep) {
    throw std::logic_error("Station: connect requires deep sleep");
  }
  ready_cb_ = std::move(ready);
  connect_then_ps_ = true;
  begin_wake(/*full_connect=*/true);
}

void Station::power_save_send(Bytes payload, CycleCallback done) {
  // Accept sends both from light sleep and from within a beacon-listen
  // window (the radio is already up in the latter case).
  if (phase_ != Phase::PsIdle && phase_ != Phase::PsBeaconRx) {
    throw std::logic_error("Station: power_save_send requires PS mode");
  }
  pending_payload_ = std::move(payload);
  cycle_done_ = std::move(done);
  wake_time_ = scheduler_.now();
  phase_ = Phase::PsSend;
  tracker_.set_phase(config_.power.cpu_active, kPhaseTx);
  // MCU wake from automatic light sleep, then hand the frame to the MAC.
  // Epoch guards: if the link is torn down (fault injection, beacon
  // loss) while these continuations are pending, they must not run
  // against the replacement association.
  scheduler_.schedule_in(config_.power.ps_wake_time, [this, epoch = link_epoch_] {
    if (epoch != link_epoch_) return;
    send_payload_and_finish([this, epoch] {
      if (epoch != link_epoch_) return;
      // Post-TX driver work, then settle back into PS idle.
      scheduler_.schedule_in(config_.power.ps_tx_processing, [this, epoch] {
        if (epoch != link_epoch_) return;
        CycleReport report;
        report.success = true;
        report.wake_time = wake_time_;
        report.sleep_time = scheduler_.now();
        report.active_time = report.sleep_time - report.wake_time;
        enter_ps_idle();
        report.energy = timeline_.energy_between(report.wake_time, report.sleep_time);
        if (cycle_done_) {
          auto cb = std::move(cycle_done_);
          cycle_done_ = {};
          cb(report);
        }
      });
    });
  });
}

void Station::disconnect(std::function<void()> done) {
  if (phase_ != Phase::PsIdle && phase_ != Phase::PsBeaconRx) {
    throw std::logic_error("Station: disconnect requires PS mode");
  }
  if (ps_wake_timer_) {
    scheduler_.cancel(*ps_wake_timer_);
    ps_wake_timer_.reset();
  }
  phase_ = Phase::PsSend;  // radio up for the farewell frame
  tracker_.set_phase(config_.power.cpu_active, kPhaseInit);
  dot11::Deauthentication deauth;
  deauth.reason = dot11::ReasonCode::DeauthLeaving;
  const Bytes mpdu = dot11::build_mgmt_mpdu(MgmtSubtype::Deauthentication, bssid_,
                                            config_.mac, bssid_, next_seq(),
                                            deauth.encode());
  last_tx_was_connect_frame_ = false;
  csma_->send(mpdu, config_.mgmt_rate, /*expect_ack=*/true,
              [this, done = std::move(done)](const sim::Csma::Result&) {
                scheduler_.schedule_in(config_.power.shutdown_time, [this, done] {
                  enter_deep_sleep();
                  if (done) done();
                });
              });
}

// ---------------------------------------------------------------------------
// Connect flow.
// ---------------------------------------------------------------------------

void Station::begin_wake(bool full_connect) {
  wake_time_ = scheduler_.now();
  phase_ = Phase::Boot;
  step_attempts_ = 0;
  counting_connect_frames_ = true;
  tracker_.set_phase(config_.power.cpu_active, kPhaseInit);
  const Duration init_time =
      config_.power.boot_from_deep_sleep +
      (full_connect ? config_.power.wifi_client_init : config_.power.wifi_inject_init);
  scheduler_.schedule_in(init_time, [this] {
    phase_ = Phase::Probe;
    tracker_.set_phase(config_.power.radio_rx, kPhaseAssoc);
    step_probe();
  });
}

void Station::step_probe() {
  dot11::ProbeRequest req;
  req.ies.add(dot11::make_ssid_ie(config_.ssid));
  req.ies.add(dot11::make_supported_rates_ie(dot11::default_bg_rates()));
  const Bytes mpdu =
      dot11::build_mgmt_mpdu(MgmtSubtype::ProbeRequest, MacAddress::broadcast(), config_.mac,
                             MacAddress::broadcast(), next_seq(), req.encode());
  ++stats_.connect_mac_frames;
  csma_->send(mpdu, config_.mgmt_rate, /*expect_ack=*/false, {});
  arm_step_timeout([this] { step_probe(); });
}

void Station::step_auth() {
  phase_ = Phase::Auth;
  dot11::Authentication auth;
  auth.transaction_seq = 1;
  ++stats_.connect_mac_frames;
  send_mgmt(MgmtSubtype::Authentication, auth.encode(), /*expect_ack=*/true);
  arm_step_timeout([this] { step_auth(); });
}

void Station::step_assoc() {
  phase_ = Phase::Assoc;
  dot11::AssocRequest req;
  req.listen_interval = static_cast<std::uint16_t>(config_.listen_skip);
  req.ies.add(dot11::make_ssid_ie(config_.ssid));
  req.ies.add(dot11::make_supported_rates_ie(dot11::default_bg_rates()));
  req.ies.add(dot11::make_ht_caps_ie());
  if (!config_.passphrase.empty()) req.ies.add(dot11::make_rsn_psk_ccmp_ie());
  ++stats_.connect_mac_frames;
  send_mgmt(MgmtSubtype::AssocRequest, req.encode(), /*expect_ack=*/true);
  arm_step_timeout([this] { step_assoc(); });
}

void Station::on_m1(const dot11::EapolKeyFrame& m1) {
  disarm_step_timeout();
  for (auto& b : snonce_) b = static_cast<std::uint8_t>(rng_.below(256));
  ptk_ = crypto::derive_ptk(pmk_, bssid_, config_.mac, m1.nonce, snonce_);
  // Supplicant-side key derivation takes real time on the MCU.
  const std::uint64_t replay = m1.replay_counter;
  scheduler_.schedule_in(config_.power.wpa2_crypto_time, [this, replay] {
    const dot11::InfoElement rsn = dot11::make_rsn_psk_ccmp_ie();
    ByteWriter w(rsn.data.size() + 2);
    w.u8(static_cast<std::uint8_t>(dot11::IeId::Rsn));
    w.u8(static_cast<std::uint8_t>(rsn.data.size()));
    w.bytes(rsn.data);
    const Bytes rsn_encoded = w.take();
    const auto m2 = dot11::make_handshake_m2(replay, snonce_, rsn_encoded, ptk_.kck);
    ++stats_.connect_mac_frames;
    send_llc_to_ap(net::EtherType::Eapol, m2.encode(), /*protect=*/false,
                   /*power_management=*/false);
    arm_step_timeout([this] { fail_step("handshake M3 timeout"); });
  });
}

void Station::on_m3(const dot11::EapolKeyFrame& m3) {
  if (!m3.verify_mic(ptk_.kck)) {
    WILE_LOG(Warn) << "STA: M3 MIC mismatch";
    return;
  }
  disarm_step_timeout();
  const auto gtk = dot11::extract_gtk(m3, ptk_.kek);
  if (!gtk) {
    fail_step("M3 carried no GTK");
    return;
  }
  const auto m4 = dot11::make_handshake_m4(m3.replay_counter, ptk_.kck);
  ++stats_.connect_mac_frames;
  send_llc_to_ap(net::EtherType::Eapol, m4.encode(), /*protect=*/false,
                 /*power_management=*/false);
  ccmp_ = std::make_unique<dot11::CcmpSession>(ptk_.tk);
  step_dhcp_discover();
}

void Station::step_dhcp_discover() {
  if (phase_ != Phase::Dhcp) {
    // First entry (not a retry): fresh transaction id; retransmissions
    // reuse it, as RFC 2131 requires.
    phase_ = Phase::Dhcp;
    dhcp_xid_ = static_cast<std::uint32_t>(rng_.next());
  }
  tracker_.set_phase(config_.power.dfs_idle_wait, kPhaseDhcp);
  const auto discover = net::DhcpMessage::discover(dhcp_xid_, config_.mac);
  const Bytes packet =
      net::udp_packet(net::Ipv4Address::any(), net::DhcpMessage::kClientPort,
                      net::Ipv4Address::broadcast(), net::DhcpMessage::kServerPort,
                      discover.encode());
  ++stats_.connect_higher_layer_frames;
  send_llc_to_ap(net::EtherType::Ipv4, packet, ccmp_ != nullptr, false);
  arm_step_timeout([this] { step_dhcp_discover(); }, config_.dhcp_timeout);
}

void Station::step_dhcp_request() {
  const auto request = net::DhcpMessage::request(*dhcp_offer_, config_.mac);
  const Bytes packet =
      net::udp_packet(net::Ipv4Address::any(), net::DhcpMessage::kClientPort,
                      net::Ipv4Address::broadcast(), net::DhcpMessage::kServerPort,
                      request.encode());
  ++stats_.connect_higher_layer_frames;
  send_llc_to_ap(net::EtherType::Ipv4, packet, ccmp_ != nullptr, false);
  arm_step_timeout([this] { step_dhcp_request(); }, config_.dhcp_timeout);
}

void Station::step_arp() {
  phase_ = Phase::Arp;
  const auto arp = net::ArpPacket::request(config_.mac, *ip_, gateway_ip_);
  ++stats_.connect_higher_layer_frames;
  send_llc_to_ap(net::EtherType::Arp, arp.encode(), ccmp_ != nullptr, false);
  arm_step_timeout([this] { step_arp(); });
}

void Station::step_announce_and_send() {
  // Gratuitous ARP announcement of our new address (the 7th higher-layer
  // frame of §3.1).
  net::ArpPacket announce = net::ArpPacket::request(config_.mac, *ip_, *ip_);
  ++stats_.connect_higher_layer_frames;
  send_llc_to_ap(net::EtherType::Arp, announce.encode(), ccmp_ != nullptr, false);
  counting_connect_frames_ = false;

  if (connect_then_ps_) {
    // Tell the AP we are entering power save, then settle into PS idle.
    const Bytes null_mpdu =
        dot11::build_null_data(bssid_, config_.mac, next_seq(), /*power_management=*/true);
    csma_->send(null_mpdu, config_.mgmt_rate, /*expect_ack=*/true,
                [this, epoch = link_epoch_](const sim::Csma::Result&) {
                  if (epoch != link_epoch_) return;
                  enter_ps_idle();
                  if (ready_cb_) {
                    auto cb = std::move(ready_cb_);
                    ready_cb_ = {};
                    cb(true);
                  }
                });
    return;
  }

  phase_ = Phase::SendData;
  tracker_.set_phase(config_.power.radio_rx, kPhaseTx);
  send_payload_and_finish([this] { finish_cycle(true); });
}

void Station::send_payload_and_finish(std::function<void()> after_tx) {
  const Bytes packet = net::udp_packet(ip_.value_or(net::Ipv4Address::any()),
                                       config_.source_port, config_.server_ip,
                                       config_.server_port, pending_payload_);
  const Bytes llc = net::llc_wrap(net::EtherType::Ipv4, packet);
  Bytes body = ccmp_ ? ccmp_->seal(config_.mac, llc) : llc;
  const bool pm = phase_ == Phase::PsSend;  // stay in PS while transmitting
  const Bytes mpdu = dot11::build_data_to_ds(bssid_, config_.mac, bssid_, next_seq(), body,
                                             ccmp_ != nullptr, pm);
  last_tx_was_connect_frame_ = false;
  csma_->send(mpdu, config_.data_rate, /*expect_ack=*/true,
              [this, epoch = link_epoch_,
               after_tx = std::move(after_tx)](const sim::Csma::Result& r) {
                if (epoch != link_epoch_) return;
                if (r.success) {
                  ++stats_.data_packets_sent;
                  after_tx();
                } else if (phase_ == Phase::PsSend) {
                  fail_ps_send();
                } else {
                  fail_step("data frame never acknowledged");
                }
              });
}

void Station::finish_cycle(bool success) {
  disarm_step_timeout();
  phase_ = Phase::Shutdown;
  tracker_.set_phase(config_.power.cpu_active, kPhaseInit);
  scheduler_.schedule_in(config_.power.shutdown_time, [this, success] {
    CycleReport report;
    report.success = success;
    report.wake_time = wake_time_;
    report.sleep_time = scheduler_.now();
    report.active_time = report.sleep_time - report.wake_time;
    enter_deep_sleep();
    report.energy = timeline_.energy_between(report.wake_time, report.sleep_time);
    if (cycle_done_) {
      auto cb = std::move(cycle_done_);
      cycle_done_ = {};
      cb(report);
    }
  });
}

void Station::enter_deep_sleep() {
  phase_ = Phase::DeepSleep;
  ++link_epoch_;  // invalidate continuations of the association being torn down
  ccmp_.reset();
  ip_.reset();
  dhcp_offer_.reset();
  last_beacon_time_.reset();
  consecutive_beacon_misses_ = 0;
  tracker_.set_phase(config_.power.deep_sleep, kPhaseSleep);
}

void Station::fail_ps_send() {
  // A PS-mode data frame exhausted its MAC retries: either the AP is
  // gone or it rebooted and forgot us. Report the failed cycle to the
  // caller, then declare the link dead so the owner can re-associate.
  CycleReport report;
  report.success = false;
  report.wake_time = wake_time_;
  report.sleep_time = scheduler_.now();
  report.active_time = report.sleep_time - report.wake_time;
  report.energy = timeline_.energy_between(report.wake_time, report.sleep_time);
  auto cb = std::move(cycle_done_);
  cycle_done_ = {};
  declare_link_lost("PS data frame never acknowledged");
  if (cb) cb(report);
}

void Station::declare_link_lost(const char* why) {
  WILE_LOG(Warn) << "STA: link lost: " << why;
  ++stats_.link_losses;
  if (ps_wake_timer_) {
    scheduler_.cancel(*ps_wake_timer_);
    ps_wake_timer_.reset();
  }
  disarm_step_timeout();
  enter_deep_sleep();
  if (link_lost_) link_lost_();
}

void Station::force_link_down() {
  if (phase_ != Phase::PsIdle && phase_ != Phase::PsBeaconRx && phase_ != Phase::PsSend) {
    return;  // only an established PS link can be killed
  }
  if (phase_ == Phase::PsSend && cycle_done_) {
    fail_ps_send();
    return;
  }
  declare_link_lost("forced down (injected fault)");
}

void Station::fail_step(const char* what) {
  WILE_LOG(Warn) << "STA: connect step failed: " << what;
  counting_connect_frames_ = false;
  if (connect_then_ps_) {
    enter_deep_sleep();
    if (ready_cb_) {
      auto cb = std::move(ready_cb_);
      ready_cb_ = {};
      cb(false);
    }
    return;
  }
  finish_cycle(false);
}

// ---------------------------------------------------------------------------
// Power save idle.
// ---------------------------------------------------------------------------

void Station::enter_ps_idle() {
  phase_ = Phase::PsIdle;
  tracker_.set_phase(config_.power.light_sleep, kPhaseSleep);
  // A wake timer may survive from before a PS send; never run two chains.
  if (ps_wake_timer_) {
    scheduler_.cancel(*ps_wake_timer_);
    ps_wake_timer_.reset();
  }
  schedule_ps_beacon_wake();
}

void Station::schedule_ps_beacon_wake() {
  const Duration beacon_interval{static_cast<std::int64_t>(beacon_interval_tu_) * 1024};
  const Duration listen = beacon_interval * config_.listen_skip;
  // Anchor the wake-up to the AP's TBTT schedule (tracked from the last
  // beacon we actually heard), waking a guard interval early.
  TimePoint target = scheduler_.now() + listen;
  if (last_beacon_time_) {
    TimePoint tbtt = *last_beacon_time_ + listen;
    while (tbtt - config_.ps_wake_guard <= scheduler_.now()) tbtt += beacon_interval;
    target = tbtt - config_.ps_wake_guard;
  }
  ps_wake_timer_ = scheduler_.schedule_at(target, [this] {
    ps_wake_timer_.reset();
    if (phase_ != Phase::PsIdle) return;  // a send is in progress
    phase_ = Phase::PsBeaconRx;
    beacon_seen_in_window_ = false;
    tracker_.set_phase(config_.power.radio_rx, kPhaseSleep);
    // The close event is tracked in ps_wake_timer_ too, so a teardown
    // mid-window cancels the whole chain.
    ps_wake_timer_ = scheduler_.schedule_in(config_.ps_beacon_rx_window, [this] {
      ps_wake_timer_.reset();
      close_ps_beacon_window();
    });
  });
}

void Station::close_ps_beacon_window() {
  if (phase_ == Phase::PsBeaconRx) {
    phase_ = Phase::PsIdle;
    tracker_.set_phase(config_.power.light_sleep, kPhaseSleep);
    if (!beacon_seen_in_window_) {
      ++stats_.beacons_missed;
      ++consecutive_beacon_misses_;
      if (config_.beacon_loss_limit > 0 &&
          consecutive_beacon_misses_ >= config_.beacon_loss_limit) {
        // N consecutive silent TBTTs: the AP is gone (or we drifted so
        // far off its schedule that the link is useless either way).
        declare_link_lost("beacon loss");
        return;
      }
    }
  }
  schedule_ps_beacon_wake();
}

// ---------------------------------------------------------------------------
// Frame handling.
// ---------------------------------------------------------------------------

void Station::on_frame(const sim::RxFrame& frame) {
  if (config_.wur && phase_ == Phase::DeepSleep) {
    // Deep sleep with the companion receiver up: the only decodable
    // waveform is a 6-byte OOK wake-up frame for this station.
    auto wake = phy::decode_wakeup_frame(frame.mpdu.view());
    if (!wake) return;
    const bool addressed_here =
        wake->group_addressed
            ? (config_.wur_group_id != 0 && wake->address == config_.wur_group_id)
            : wake->address == config_.wur_id;
    if (!addressed_here) return;
    if (last_wur_seq_ && *last_wur_seq_ == wake->seq) return;  // repeat
    last_wur_seq_ = wake->seq;
    ++stats_.wur_wakes;
    if (wur_wake_) {
      scheduler_.schedule_in(config_.wur->wake_latency, [this] {
        if (phase_ == Phase::DeepSleep && wur_wake_) wur_wake_();
      });
    }
    return;
  }
  if (dot11::is_control_frame(frame.mpdu)) {
    if (auto ack = dot11::parse_ack(frame.mpdu); ack && ack->fcs_ok) {
      if (ack->receiver == config_.mac) {
        ++stats_.mac_frames_received;
        ++stats_.acks_received;
        // Attribute the ACK to whatever we last transmitted: ACKs of
        // management/EAPOL frames belong to the paper's "20 MAC-layer
        // frames"; ACKs of DHCP/ARP data frames do not.
        if (counting_connect_frames_ && last_tx_was_connect_frame_) {
          ++stats_.connect_mac_frames;
        }
        csma_->notify_ack();
      }
    }
    return;
  }

  auto parsed = dot11::parse_mpdu(frame.mpdu);
  if (!parsed || !parsed->fcs_ok) return;
  const dot11::MacHeader& h = parsed->header;

  const bool for_us = h.addr1 == config_.mac;
  const bool broadcast = h.addr1.is_broadcast();
  if (h.addr2 == config_.mac) return;  // our own transmissions
  if (!for_us) {
    // Virtual carrier sense: honour the overheard NAV reservation.
    csma_->observe_nav(h.duration_id);
    if (!broadcast) return;
  }

  ++stats_.mac_frames_received;
  if (for_us) {
    // Decide now whether this ACK counts toward the connect-frame tally:
    // it acknowledges a management frame or an (unprotected) EAPOL data
    // frame, not a DHCP/ARP exchange.
    bool connect_ack = false;
    if (counting_connect_frames_) {
      if (h.fc.type == dot11::FrameType::Management) {
        connect_ack = true;
      } else if (h.fc.type == dot11::FrameType::Data && !h.fc.protected_frame) {
        if (auto llc = net::LlcSnap::decode(mpdu_body_view(frame.mpdu))) {
          connect_ack = llc->ethertype == net::EtherType::Eapol;
        }
      }
    }
    send_ack_after_sifs(h.addr2, connect_ack);
  }

  switch (h.fc.type) {
    case dot11::FrameType::Management:
      handle_mgmt(*parsed);
      break;
    case dot11::FrameType::Data:
      handle_data(*parsed);
      break;
    default:
      break;
  }
}

void Station::send_ack_after_sifs(const MacAddress& to, bool count_as_connect) {
  scheduler_.schedule_in(phy::MacTiming::kSifs, [this, to, count_as_connect] {
    if (medium_.transmitting(node_id_)) {
      scheduler_.schedule_in(Duration{10},
                             [this, to, count_as_connect] {
                               send_ack_after_sifs(to, count_as_connect);
                             });
      return;
    }
    sim::TxRequest req;
    req.mpdu = dot11::build_ack(to);
    req.airtime = phy::ack_airtime();
    req.tx_power_dbm = config_.tx_power_dbm;
    req.rate = phy::kControlResponseRate;
    tracker_.on_tx_start(req.airtime, config_.power.radio_tx_legacy);
    ++stats_.mac_frames_sent;
    ++stats_.acks_sent;
    if (count_as_connect) ++stats_.connect_mac_frames;
    medium_.transmit(node_id_, std::move(req));
  });
}

BytesView Station::mpdu_body_view(BytesView mpdu) {
  // Strip header and FCS; callers have already validated the frame.
  return mpdu.subspan(dot11::MacHeader::kSize,
                      mpdu.size() - dot11::MacHeader::kSize - dot11::kFcsSize);
}

void Station::handle_mgmt(const dot11::ParsedMpdu& mpdu) {
  const dot11::MacHeader& h = mpdu.header;
  switch (static_cast<MgmtSubtype>(h.fc.subtype)) {
    case MgmtSubtype::ProbeResponse: {
      if (phase_ != Phase::Probe) return;
      auto resp = dot11::ProbeResponse::decode(mpdu.body);
      if (!resp) return;
      const auto ssid = dot11::parse_ssid_ie(resp->ies);
      if (!ssid || *ssid != config_.ssid) return;
      disarm_step_timeout();
      ++stats_.connect_mac_frames;
      bssid_ = h.addr3;
      beacon_interval_tu_ = resp->beacon_interval_tu;
      // Finish the scan dwell before authenticating.
      scheduler_.schedule_in(config_.probe_dwell, [this] {
        if (phase_ == Phase::Probe) step_auth();
      });
      break;
    }
    case MgmtSubtype::Authentication: {
      if (phase_ != Phase::Auth) return;
      auto auth = dot11::Authentication::decode(mpdu.body);
      if (!auth || auth->transaction_seq != 2) return;
      if (auth->status != dot11::StatusCode::Success) {
        fail_step("authentication rejected");
        return;
      }
      disarm_step_timeout();
      ++stats_.connect_mac_frames;
      step_assoc();
      break;
    }
    case MgmtSubtype::AssocResponse: {
      if (phase_ != Phase::Assoc) return;
      auto resp = dot11::AssocResponse::decode(mpdu.body);
      if (!resp) return;
      if (resp->status != dot11::StatusCode::Success) {
        fail_step("association rejected");
        return;
      }
      disarm_step_timeout();
      ++stats_.connect_mac_frames;
      aid_ = resp->aid;
      if (config_.passphrase.empty()) {
        step_dhcp_discover();
      } else {
        phase_ = Phase::Handshake;
        arm_step_timeout([this] { fail_step("handshake M1 timeout"); });
      }
      break;
    }
    case MgmtSubtype::Beacon: {
      auto beacon = dot11::Beacon::decode(mpdu.body);
      if (!beacon) return;
      // Track the AP's TBTT whenever the radio happens to be on, even
      // outside PS windows (e.g. during connection establishment).
      if (h.addr3 == bssid_ || bssid_.is_zero()) {
        if (h.addr3 == bssid_) last_beacon_time_ = scheduler_.now();
      }
      if (phase_ != Phase::PsBeaconRx && phase_ != Phase::PsIdle) return;
      if (h.addr3 != bssid_) return;
      ++stats_.beacons_heard;
      beacon_seen_in_window_ = true;
      consecutive_beacon_misses_ = 0;  // the link is alive
      const auto tim = dot11::parse_tim_ie(beacon->ies);
      if (tim && aid_ != 0 && tim->traffic_for(aid_)) {
        // Fetch the buffered frame with a PS-Poll.
        phase_ = Phase::PsBeaconRx;  // stay awake for the delivery
        sim::TxRequest req;
        req.mpdu = dot11::build_ps_poll(aid_, bssid_, config_.mac);
        req.airtime = phy::frame_airtime(req.mpdu.size(), phy::kControlResponseRate);
        req.tx_power_dbm = config_.tx_power_dbm;
        req.rate = phy::kControlResponseRate;
        tracker_.on_tx_start(req.airtime, config_.power.radio_tx_legacy);
        ++stats_.mac_frames_sent;
        ++stats_.ps_polls_sent;
        scheduler_.schedule_in(phy::MacTiming::kSifs, [this, req = std::move(req)]() mutable {
          if (!medium_.transmitting(node_id_)) medium_.transmit(node_id_, std::move(req));
        });
      }
      break;
    }
    default:
      break;
  }
}

void Station::handle_data(const dot11::ParsedMpdu& mpdu) {
  const dot11::MacHeader& h = mpdu.header;
  if (!h.fc.from_ds) return;
  if (h.addr2 != bssid_ && !bssid_.is_zero()) return;

  Bytes plain;
  BytesView body = mpdu.body;
  if (h.fc.protected_frame) {
    if (!ccmp_) return;
    auto opened = ccmp_->open(h.addr2, body);
    if (!opened) return;
    plain = std::move(*opened);
    body = plain;
  }

  auto llc = net::LlcSnap::decode(body);
  if (!llc) return;
  switch (llc->ethertype) {
    case net::EtherType::Eapol: {
      auto frame = dot11::EapolKeyFrame::decode(llc->payload);
      if (!frame) return;
      const int msg = dot11::handshake_message_number(*frame);
      if (msg == 1 && phase_ == Phase::Handshake) {
        ++stats_.connect_mac_frames;
        on_m1(*frame);
      } else if (msg == 3 && phase_ == Phase::Handshake) {
        ++stats_.connect_mac_frames;
        on_m3(*frame);
      }
      break;
    }
    case net::EtherType::Ipv4:
      handle_downlink_ip(llc->payload);
      break;
    case net::EtherType::Arp: {
      auto arp = net::ArpPacket::decode(llc->payload);
      if (!arp) return;
      if (phase_ == Phase::Arp && arp->op == net::ArpPacket::Op::Reply &&
          arp->sender_ip == gateway_ip_) {
        disarm_step_timeout();
        ++stats_.connect_higher_layer_frames;
        gateway_mac_ = arp->sender_mac;
        // Bind the address into the stack before announcing + sending.
        scheduler_.schedule_in(config_.ip_config_delay, [this] {
          if (phase_ == Phase::Arp) step_announce_and_send();
        });
      }
      break;
    }
  }
}

void Station::handle_downlink_ip(BytesView packet) {
  auto parsed = net::Ipv4Header::decode(packet);
  if (!parsed || !parsed->checksum_ok) return;
  if (parsed->header.protocol != net::IpProto::Udp) return;
  auto udp = net::UdpDatagram::decode(parsed->payload, parsed->header.source,
                                      parsed->header.destination);
  if (!udp || !udp->checksum_ok) return;

  if (udp->datagram.dest_port == net::DhcpMessage::kClientPort) {
    auto dhcp = net::DhcpMessage::decode(udp->datagram.payload);
    if (!dhcp || dhcp->xid != dhcp_xid_ || dhcp->chaddr != config_.mac) return;
    if (dhcp->type == net::DhcpMessageType::Offer && phase_ == Phase::Dhcp &&
        !dhcp_offer_) {
      disarm_step_timeout();
      ++stats_.connect_higher_layer_frames;
      dhcp_offer_ = *dhcp;
      step_dhcp_request();
    } else if (dhcp->type == net::DhcpMessageType::Ack && phase_ == Phase::Dhcp &&
               dhcp_offer_) {
      disarm_step_timeout();
      ++stats_.connect_higher_layer_frames;
      ip_ = dhcp->yiaddr;
      gateway_ip_ = dhcp->ip_option(net::DhcpOption::kRouter).value_or(dhcp->siaddr);
      step_arp();
    }
    return;
  }

  ++stats_.downlink_packets;
  if (downlink_) downlink_(parsed->header, udp->datagram);
}

// ---------------------------------------------------------------------------
// Helpers.
// ---------------------------------------------------------------------------

void Station::send_mgmt(MgmtSubtype subtype, BytesView body, bool expect_ack) {
  const Bytes mpdu =
      dot11::build_mgmt_mpdu(subtype, bssid_, config_.mac, bssid_, next_seq(), body);
  last_tx_was_connect_frame_ = true;
  csma_->send(mpdu, config_.mgmt_rate, expect_ack, {});
}

void Station::send_llc_to_ap(net::EtherType ethertype, BytesView payload, bool protect,
                             bool power_management) {
  const Bytes llc = net::llc_wrap(ethertype, payload);
  Bytes body = protect && ccmp_ ? ccmp_->seal(config_.mac, llc) : llc;
  const Bytes mpdu = dot11::build_data_to_ds(bssid_, config_.mac, bssid_, next_seq(), body,
                                             protect && ccmp_ != nullptr, power_management);
  last_tx_was_connect_frame_ = ethertype == net::EtherType::Eapol;
  csma_->send(mpdu, config_.data_rate, /*expect_ack=*/true, {});
}

void Station::arm_step_timeout(std::function<void()> retry, std::optional<Duration> timeout) {
  // Cancel any previous timer but keep the attempt counter: retries of
  // the same step must accumulate toward the retry limit. The counter is
  // cleared by disarm_step_timeout() when a step *succeeds*.
  if (step_timer_) {
    scheduler_.cancel(*step_timer_);
    step_timer_.reset();
  }
  step_timer_ = scheduler_.schedule_in(timeout.value_or(config_.response_timeout),
                                       [this, retry = std::move(retry)] {
    step_timer_.reset();
    if (++step_attempts_ > config_.step_retry_limit) {
      fail_step("too many retries");
      return;
    }
    retry();
  });
}

void Station::disarm_step_timeout() {
  if (step_timer_) {
    scheduler_.cancel(*step_timer_);
    step_timer_.reset();
  }
  step_attempts_ = 0;
}

void Station::publish_metrics(telemetry::MetricsRegistry& registry,
                              const std::string& prefix) const {
  registry.bind_counter(prefix + ".mac_frames_sent", &stats_.mac_frames_sent);
  registry.bind_counter(prefix + ".mac_frames_received", &stats_.mac_frames_received);
  registry.bind_counter(prefix + ".acks_sent", &stats_.acks_sent);
  registry.bind_counter(prefix + ".acks_received", &stats_.acks_received);
  registry.bind_counter(prefix + ".connect_mac_frames", &stats_.connect_mac_frames);
  registry.bind_counter(prefix + ".connect_higher_layer_frames",
                        &stats_.connect_higher_layer_frames);
  registry.bind_counter(prefix + ".data_packets_sent", &stats_.data_packets_sent);
  registry.bind_counter(prefix + ".beacons_heard", &stats_.beacons_heard);
  registry.bind_counter(prefix + ".ps_polls_sent", &stats_.ps_polls_sent);
  registry.bind_counter(prefix + ".downlink_packets", &stats_.downlink_packets);
  registry.bind_counter(prefix + ".beacons_missed", &stats_.beacons_missed);
  registry.bind_counter(prefix + ".link_losses", &stats_.link_losses);
}

}  // namespace wile::sta
