// Simulated WiFi client station — the ESP32 firmware the paper measures.
//
// Implements the complete connection establishment of §3.1 with real
// frames: active probe, open-system authentication, association, the
// WPA2-PSK 4-way handshake (real key derivation and MICs), then
// DHCP DISCOVER/OFFER/REQUEST/ACK, ARP resolution of the gateway, a
// gratuitous ARP announcement, and finally the CCMP-protected UDP data
// packet. Every step drives the ESP32 power timeline, which is how the
// WiFi-DC trace of Fig. 3a and the Table-1 energies are produced.
//
// Two operating modes match the paper's §5.3 scenarios:
//   * duty cycle (WiFi-DC): deep sleep between transmissions; the whole
//     connect flow re-runs on every wake.
//   * power save (WiFi-PS): stay associated; sleep in automatic light
//     sleep waking for every `listen_skip`-th beacon; transmissions skip
//     re-association.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "dot11/ccmp.hpp"
#include "dot11/eapol.hpp"
#include "dot11/frame.hpp"
#include "net/arp.hpp"
#include "net/dhcp.hpp"
#include "net/llc.hpp"
#include "net/udp.hpp"
#include "phy/wur_phy.hpp"
#include "power/devices.hpp"
#include "power/radio_tracker.hpp"
#include "power/timeline.hpp"
#include "sim/csma.hpp"
#include "sim/medium.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace wile::sta {

struct StationConfig {
  MacAddress mac = MacAddress::from_seed(0x57A);
  std::string ssid = "GoogleWifi";
  std::string passphrase = "hotnets2019";  // must match the AP (empty = open)
  /// Destination of the sensor reading (the paper's "base station").
  net::Ipv4Address server_ip{192, 168, 86, 2};
  std::uint16_t server_port = 9000;
  std::uint16_t source_port = 40000;

  phy::WifiRate mgmt_rate = phy::WifiRate::G6;
  phy::WifiRate data_rate = phy::WifiRate::Mcs7Sgi;  // 72 Mbps, as in §5.4
  double tx_power_dbm = 0.0;

  /// Listen interval for power-save mode: wake for every Nth beacon
  /// ("the WiFi chip wakes up only for every third beacon frame", §5.3).
  int listen_skip = 3;
  /// Radio-on window around each PS beacon reception (wake ramp +
  /// beacon airtime + TIM processing). Calibrated with listen_skip=3 to
  /// Table 1's 4500 uA average idle draw.
  Duration ps_beacon_rx_window = usec(10'300);
  /// Wake this long before the expected TBTT (sleep-clock guard).
  Duration ps_wake_guard = msec(2);
  /// PS-mode link supervision: after this many consecutive listen
  /// wake-ups with no beacon from our AP, declare the link dead, tear
  /// down to deep sleep and fire the link-lost handler. With
  /// listen_skip=3 and 100 TU beacons, the default detects an AP outage
  /// in ~8 * 307 ms ≈ 2.5 s. 0 disables supervision (pre-fault-injection
  /// behaviour: idle forever against a dead AP).
  int beacon_loss_limit = 8;

  /// Scan dwell after a probe response: real clients keep listening on
  /// the channel before committing to an AP (part of Fig. 3a's
  /// Probe/Auth./Associate phase width).
  Duration probe_dwell = msec(100);
  /// Network-stack configuration time after the address is bound
  /// (routes, gratuitous-ARP scheduling).
  Duration ip_config_delay = msec(60);
  /// Per-step response timeout before the step is retried.
  Duration response_timeout = msec(120);
  /// DHCP server processing is slow (Fig. 3a's long network-layer waits);
  /// real clients wait much longer before retransmitting.
  Duration dhcp_timeout = msec(900);
  int step_retry_limit = 4;

  power::Esp32PowerProfile power{};

  /// 802.11ba wake-up companion (optional): while in deep sleep the
  /// station keeps a uW-class WUR receiver listening; an AP wake-up
  /// frame matching `wur_id` (or `wur_group_id`) fires the wake handler
  /// so the owner can run a duty-cycle transmission or PS send without
  /// ever polling. The listen draw overlays the whole power timeline.
  std::optional<power::WurReceiverModel> wur;
  /// 12-bit WUR ID; 0 = derive from the MAC's low bytes.
  std::uint16_t wur_id = 0;
  /// Group membership for multicast wakes; 0 = no group.
  std::uint16_t wur_group_id = 0;
};

/// Counters for the §3.1 frame-count claims (experiment E5).
struct StationStats {
  std::uint64_t mac_frames_sent = 0;      // everything incl. ACKs we emit
  std::uint64_t mac_frames_received = 0;  // frames addressed to us (incl. ACKs)
  std::uint64_t acks_sent = 0;
  std::uint64_t acks_received = 0;
  /// Management + EAPOL frames exchanged during connection establishment
  /// (both directions, including ACKs) — the paper's "20 MAC-layer
  /// frames".
  std::uint64_t connect_mac_frames = 0;
  /// DHCP/ARP packets exchanged (both directions) — the paper's
  /// "7 higher-layer frames".
  std::uint64_t connect_higher_layer_frames = 0;
  std::uint64_t data_packets_sent = 0;
  std::uint64_t beacons_heard = 0;
  std::uint64_t ps_polls_sent = 0;
  std::uint64_t downlink_packets = 0;
  /// PS listen windows that closed without hearing our AP's beacon.
  std::uint64_t beacons_missed = 0;
  /// Times link supervision (or a forced fault) declared the link dead.
  std::uint64_t link_losses = 0;
  /// 802.11ba wake-up frames that matched this station's WUR ID/group.
  std::uint64_t wur_wakes = 0;
};

/// Summary of one completed transmission cycle.
struct CycleReport {
  bool success = false;
  TimePoint wake_time{};
  TimePoint sleep_time{};
  Joules energy{};           // integrated over [wake, sleep)
  Duration active_time{};    // sleep_time - wake_time
};

class Station : public sim::MediumClient {
 public:
  Station(sim::Scheduler& scheduler, sim::Medium& medium, sim::Position position,
          StationConfig config, Rng rng);

  using CycleCallback = std::function<void(const CycleReport&)>;
  using ReadyCallback = std::function<void(bool success)>;

  /// WiFi-DC: wake from deep sleep, run the full §3.1 connect flow, send
  /// one UDP payload, return to deep sleep, report.
  void run_duty_cycle_transmission(Bytes payload, CycleCallback done);

  /// WiFi-PS: connect once (same flow) and drop into power-save idle.
  void connect_and_enter_power_save(ReadyCallback ready);

  /// WiFi-PS: send one UDP payload from power-save idle (no
  /// re-association), reporting the wake-to-sleep cycle.
  void power_save_send(Bytes payload, CycleCallback done);

  /// Take back the buffer passed to the last payload-carrying send. The
  /// UDP packet copies the payload at TX time, so after the cycle
  /// callback fires (success or failure) the buffer is idle — a batching
  /// caller can reclaim it and re-fill in place instead of allocating a
  /// fresh one per send.
  [[nodiscard]] Bytes reclaim_payload() { return std::move(pending_payload_); }

  /// Gracefully leave the network from power-save mode: transmit a
  /// Deauthentication frame, then drop to deep sleep. After this the
  /// station can run duty-cycle transmissions again.
  void disconnect(std::function<void()> done = {});

  /// Downlink UDP sink (two-way traffic reaching this station).
  using DownlinkHandler =
      std::function<void(const net::Ipv4Header&, const net::UdpDatagram&)>;
  void set_downlink_handler(DownlinkHandler handler) { downlink_ = std::move(handler); }

  /// Invoked after the station declares its PS-mode link dead (beacon
  /// loss, an unacknowledged PS send, or force_link_down) and has torn
  /// down to deep sleep. The owner may call connect_and_enter_power_save
  /// again from inside the handler.
  using LinkLostHandler = std::function<void()>;
  void set_link_lost_handler(LinkLostHandler handler) { link_lost_ = std::move(handler); }

  /// Invoked (from deep sleep) when the 802.11ba companion receiver
  /// decodes a wake-up frame addressed to this station. The handler
  /// typically calls run_duty_cycle_transmission — the station is
  /// guaranteed deep-sleeping when it fires. Requires config.wur.
  using WurWakeHandler = std::function<void()>;
  void set_wur_wake_handler(WurWakeHandler handler) { wur_wake_ = std::move(handler); }

  /// Injected fault: the radio/driver dies while associated. Tears down
  /// to deep sleep immediately (failing any in-flight PS send via its
  /// callback) and fires the link-lost handler. No-op outside PS mode.
  void force_link_down();

  [[nodiscard]] bool deep_sleeping() const { return phase_ == Phase::DeepSleep; }

  [[nodiscard]] const power::PowerTimeline& timeline() const { return timeline_; }
  [[nodiscard]] const StationStats& stats() const { return stats_; }

  /// Bind station counters into a telemetry registry under `prefix`
  /// (canonically "node.<id>.station"); stats() keeps the same slots.
  void publish_metrics(telemetry::MetricsRegistry& registry,
                       const std::string& prefix) const;
  [[nodiscard]] const StationConfig& config() const { return config_; }
  [[nodiscard]] sim::NodeId node_id() const { return node_id_; }
  [[nodiscard]] std::optional<net::Ipv4Address> ip() const { return ip_; }
  /// Teardown generation of the current association (see link_epoch_).
  /// Strictly monotone for the station's lifetime — the chaos harness
  /// registers it as a monotone-counter invariant across brown-out
  /// resumes and forced link-downs.
  [[nodiscard]] std::uint64_t link_epoch() const { return link_epoch_; }
  [[nodiscard]] bool associated() const {
    return phase_ == Phase::PsIdle || phase_ == Phase::PsBeaconRx ||
           phase_ == Phase::PsSend;
  }

  // --- sim::MediumClient -----------------------------------------------------
  void on_frame(const sim::RxFrame& frame) override;
  [[nodiscard]] bool rx_enabled() const override;

 private:
  enum class Phase {
    DeepSleep,
    Boot,
    WifiInit,
    Probe,
    Auth,
    Assoc,
    Handshake,
    Dhcp,
    Arp,
    SendData,
    Shutdown,
    PsIdle,      // associated, automatic light sleep
    PsBeaconRx,  // awake listening for a beacon
    PsSend,      // awake transmitting in PS mode
  };

  // -- connect flow steps ------------------------------------------------------
  void begin_wake(bool full_connect);
  void step_probe();
  void step_auth();
  void step_assoc();
  void on_m1(const dot11::EapolKeyFrame& m1);
  void on_m3(const dot11::EapolKeyFrame& m3);
  void step_dhcp_discover();
  void step_dhcp_request();
  void step_arp();
  void step_announce_and_send();
  void send_payload_and_finish(std::function<void()> after_tx);
  void finish_cycle(bool success);
  void enter_deep_sleep();
  void enter_ps_idle();
  void schedule_ps_beacon_wake();
  void close_ps_beacon_window();
  void fail_step(const char* what);
  void fail_ps_send();
  void declare_link_lost(const char* why);

  // -- frame handling -----------------------------------------------------------
  void handle_mgmt(const dot11::ParsedMpdu& mpdu);
  void handle_data(const dot11::ParsedMpdu& mpdu);
  void handle_eapol(BytesView eapol_bytes);
  void handle_downlink_ip(BytesView packet);
  void send_ack_after_sifs(const MacAddress& to, bool count_as_connect = false);
  static BytesView mpdu_body_view(BytesView mpdu);

  // -- helpers -------------------------------------------------------------------
  void send_mgmt(dot11::MgmtSubtype subtype, BytesView body, bool expect_ack);
  void send_llc_to_ap(net::EtherType ethertype, BytesView payload, bool protect,
                      bool power_management);
  void arm_step_timeout(std::function<void()> retry,
                        std::optional<Duration> timeout = std::nullopt);
  void disarm_step_timeout();
  std::uint16_t next_seq() { return seq_++ & 0x0fff; }
  [[nodiscard]] bool radio_on() const;

  sim::Scheduler& scheduler_;
  sim::Medium& medium_;
  StationConfig config_;
  Rng rng_;
  sim::NodeId node_id_;
  std::unique_ptr<sim::Csma> csma_;
  power::PowerTimeline timeline_;
  power::RadioPowerTracker tracker_;

  Phase phase_ = Phase::DeepSleep;
  std::uint16_t seq_ = 0;
  int step_attempts_ = 0;
  std::optional<sim::EventId> step_timer_;
  std::optional<sim::EventId> ps_wake_timer_;
  /// Bumped on every teardown to deep sleep; continuation lambdas from a
  /// previous association (CSMA completions, PS timers) capture the epoch
  /// they were created in and bail out if it has moved on. Without this,
  /// a stale ACK-timeout callback could tear down a *new* association.
  std::uint64_t link_epoch_ = 0;
  int consecutive_beacon_misses_ = 0;
  bool beacon_seen_in_window_ = false;

  // connection state
  MacAddress bssid_;
  Bytes pmk_;
  std::array<std::uint8_t, 32> snonce_{};
  crypto::PairwiseTransientKey ptk_{};
  std::unique_ptr<dot11::CcmpSession> ccmp_;
  std::optional<net::Ipv4Address> ip_;
  MacAddress gateway_mac_;
  net::Ipv4Address gateway_ip_;
  std::optional<net::DhcpMessage> dhcp_offer_;
  std::uint32_t dhcp_xid_ = 0;
  std::uint16_t aid_ = 0;
  std::uint16_t beacon_interval_tu_ = 100;
  /// TSF tracking: arrival time of the last beacon heard from our AP,
  /// used to anchor power-save wake-ups to the TBTT schedule.
  std::optional<TimePoint> last_beacon_time_;

  // current cycle
  Bytes pending_payload_;
  CycleCallback cycle_done_;
  ReadyCallback ready_cb_;
  TimePoint wake_time_{};
  bool connect_then_ps_ = false;
  bool counting_connect_frames_ = false;
  /// Whether the most recent unicast we sent was a management/EAPOL
  /// frame (so its ACK counts toward the paper's 20 MAC frames).
  bool last_tx_was_connect_frame_ = false;

  DownlinkHandler downlink_;
  LinkLostHandler link_lost_;
  WurWakeHandler wur_wake_;
  /// Sequence dedupe for repeated (reliability) wake frames.
  std::optional<std::uint8_t> last_wur_seq_;
  StationStats stats_;
};

}  // namespace wile::sta
