# Empty compiler generated dependencies file for ablate_beacon_modes.
# This may be replaced when dependencies are built.
