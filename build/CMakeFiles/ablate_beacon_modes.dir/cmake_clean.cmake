file(REMOVE_RECURSE
  "CMakeFiles/ablate_beacon_modes.dir/bench/ablate_beacon_modes.cpp.o"
  "CMakeFiles/ablate_beacon_modes.dir/bench/ablate_beacon_modes.cpp.o.d"
  "bench/ablate_beacon_modes"
  "bench/ablate_beacon_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_beacon_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
