file(REMOVE_RECURSE
  "CMakeFiles/assoc_frames.dir/bench/assoc_frames.cpp.o"
  "CMakeFiles/assoc_frames.dir/bench/assoc_frames.cpp.o.d"
  "bench/assoc_frames"
  "bench/assoc_frames.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assoc_frames.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
