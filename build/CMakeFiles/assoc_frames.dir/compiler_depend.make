# Empty compiler generated dependencies file for assoc_frames.
# This may be replaced when dependencies are built.
