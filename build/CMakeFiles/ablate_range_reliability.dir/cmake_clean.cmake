file(REMOVE_RECURSE
  "CMakeFiles/ablate_range_reliability.dir/bench/ablate_range_reliability.cpp.o"
  "CMakeFiles/ablate_range_reliability.dir/bench/ablate_range_reliability.cpp.o.d"
  "bench/ablate_range_reliability"
  "bench/ablate_range_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_range_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
