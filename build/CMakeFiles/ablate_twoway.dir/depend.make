# Empty dependencies file for ablate_twoway.
# This may be replaced when dependencies are built.
