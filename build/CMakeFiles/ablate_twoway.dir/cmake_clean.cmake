file(REMOVE_RECURSE
  "CMakeFiles/ablate_twoway.dir/bench/ablate_twoway.cpp.o"
  "CMakeFiles/ablate_twoway.dir/bench/ablate_twoway.cpp.o.d"
  "bench/ablate_twoway"
  "bench/ablate_twoway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_twoway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
