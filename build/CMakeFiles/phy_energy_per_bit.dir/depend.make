# Empty dependencies file for phy_energy_per_bit.
# This may be replaced when dependencies are built.
