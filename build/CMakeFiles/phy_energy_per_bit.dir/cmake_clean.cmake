file(REMOVE_RECURSE
  "CMakeFiles/phy_energy_per_bit.dir/bench/phy_energy_per_bit.cpp.o"
  "CMakeFiles/phy_energy_per_bit.dir/bench/phy_energy_per_bit.cpp.o.d"
  "bench/phy_energy_per_bit"
  "bench/phy_energy_per_bit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phy_energy_per_bit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
