file(REMOVE_RECURSE
  "CMakeFiles/fig3_traces.dir/bench/fig3_traces.cpp.o"
  "CMakeFiles/fig3_traces.dir/bench/fig3_traces.cpp.o.d"
  "bench/fig3_traces"
  "bench/fig3_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
