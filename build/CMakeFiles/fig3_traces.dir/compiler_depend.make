# Empty compiler generated dependencies file for fig3_traces.
# This may be replaced when dependencies are built.
