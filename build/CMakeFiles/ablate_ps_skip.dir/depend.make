# Empty dependencies file for ablate_ps_skip.
# This may be replaced when dependencies are built.
