file(REMOVE_RECURSE
  "CMakeFiles/ablate_ps_skip.dir/bench/ablate_ps_skip.cpp.o"
  "CMakeFiles/ablate_ps_skip.dir/bench/ablate_ps_skip.cpp.o.d"
  "bench/ablate_ps_skip"
  "bench/ablate_ps_skip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_ps_skip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
