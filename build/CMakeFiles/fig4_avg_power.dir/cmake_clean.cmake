file(REMOVE_RECURSE
  "CMakeFiles/fig4_avg_power.dir/bench/fig4_avg_power.cpp.o"
  "CMakeFiles/fig4_avg_power.dir/bench/fig4_avg_power.cpp.o.d"
  "bench/fig4_avg_power"
  "bench/fig4_avg_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_avg_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
