# Empty dependencies file for fig4_avg_power.
# This may be replaced when dependencies are built.
