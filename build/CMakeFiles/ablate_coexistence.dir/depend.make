# Empty dependencies file for ablate_coexistence.
# This may be replaced when dependencies are built.
