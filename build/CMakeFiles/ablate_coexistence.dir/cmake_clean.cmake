file(REMOVE_RECURSE
  "CMakeFiles/ablate_coexistence.dir/bench/ablate_coexistence.cpp.o"
  "CMakeFiles/ablate_coexistence.dir/bench/ablate_coexistence.cpp.o.d"
  "bench/ablate_coexistence"
  "bench/ablate_coexistence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_coexistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
