file(REMOVE_RECURSE
  "CMakeFiles/ablate_collisions.dir/bench/ablate_collisions.cpp.o"
  "CMakeFiles/ablate_collisions.dir/bench/ablate_collisions.cpp.o.d"
  "bench/ablate_collisions"
  "bench/ablate_collisions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_collisions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
