# Empty dependencies file for ablate_collisions.
# This may be replaced when dependencies are built.
