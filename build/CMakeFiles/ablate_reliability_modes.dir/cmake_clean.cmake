file(REMOVE_RECURSE
  "CMakeFiles/ablate_reliability_modes.dir/bench/ablate_reliability_modes.cpp.o"
  "CMakeFiles/ablate_reliability_modes.dir/bench/ablate_reliability_modes.cpp.o.d"
  "bench/ablate_reliability_modes"
  "bench/ablate_reliability_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_reliability_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
