# Empty compiler generated dependencies file for ablate_reliability_modes.
# This may be replaced when dependencies are built.
