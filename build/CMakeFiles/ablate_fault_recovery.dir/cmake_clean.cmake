file(REMOVE_RECURSE
  "CMakeFiles/ablate_fault_recovery.dir/bench/ablate_fault_recovery.cpp.o"
  "CMakeFiles/ablate_fault_recovery.dir/bench/ablate_fault_recovery.cpp.o.d"
  "bench/ablate_fault_recovery"
  "bench/ablate_fault_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_fault_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
