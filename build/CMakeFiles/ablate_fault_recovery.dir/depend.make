# Empty dependencies file for ablate_fault_recovery.
# This may be replaced when dependencies are built.
