
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablate_fault_recovery.cpp" "CMakeFiles/ablate_fault_recovery.dir/bench/ablate_fault_recovery.cpp.o" "gcc" "CMakeFiles/ablate_fault_recovery.dir/bench/ablate_fault_recovery.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wile/CMakeFiles/wile_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/wile_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/ap/CMakeFiles/wile_ap.dir/DependInfo.cmake"
  "/root/repo/build/src/ble/CMakeFiles/wile_ble.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wile_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/wile_power.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/wile_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/dot11/CMakeFiles/wile_dot11.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wile_net.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/wile_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wile_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
