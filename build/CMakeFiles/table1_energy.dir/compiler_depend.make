# Empty compiler generated dependencies file for table1_energy.
# This may be replaced when dependencies are built.
