file(REMOVE_RECURSE
  "CMakeFiles/table1_energy.dir/bench/table1_energy.cpp.o"
  "CMakeFiles/table1_energy.dir/bench/table1_energy.cpp.o.d"
  "bench/table1_energy"
  "bench/table1_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
