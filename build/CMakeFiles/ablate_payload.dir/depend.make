# Empty dependencies file for ablate_payload.
# This may be replaced when dependencies are built.
