file(REMOVE_RECURSE
  "CMakeFiles/wile_sta.dir/station.cpp.o"
  "CMakeFiles/wile_sta.dir/station.cpp.o.d"
  "libwile_sta.a"
  "libwile_sta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wile_sta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
