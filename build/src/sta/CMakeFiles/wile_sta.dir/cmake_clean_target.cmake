file(REMOVE_RECURSE
  "libwile_sta.a"
)
