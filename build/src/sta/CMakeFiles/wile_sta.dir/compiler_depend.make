# Empty compiler generated dependencies file for wile_sta.
# This may be replaced when dependencies are built.
