file(REMOVE_RECURSE
  "libwile_net.a"
)
