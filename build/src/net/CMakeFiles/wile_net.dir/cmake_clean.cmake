file(REMOVE_RECURSE
  "CMakeFiles/wile_net.dir/arp.cpp.o"
  "CMakeFiles/wile_net.dir/arp.cpp.o.d"
  "CMakeFiles/wile_net.dir/dhcp.cpp.o"
  "CMakeFiles/wile_net.dir/dhcp.cpp.o.d"
  "CMakeFiles/wile_net.dir/ipv4.cpp.o"
  "CMakeFiles/wile_net.dir/ipv4.cpp.o.d"
  "CMakeFiles/wile_net.dir/llc.cpp.o"
  "CMakeFiles/wile_net.dir/llc.cpp.o.d"
  "CMakeFiles/wile_net.dir/udp.cpp.o"
  "CMakeFiles/wile_net.dir/udp.cpp.o.d"
  "libwile_net.a"
  "libwile_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wile_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
