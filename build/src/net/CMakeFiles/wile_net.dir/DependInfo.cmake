
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/arp.cpp" "src/net/CMakeFiles/wile_net.dir/arp.cpp.o" "gcc" "src/net/CMakeFiles/wile_net.dir/arp.cpp.o.d"
  "/root/repo/src/net/dhcp.cpp" "src/net/CMakeFiles/wile_net.dir/dhcp.cpp.o" "gcc" "src/net/CMakeFiles/wile_net.dir/dhcp.cpp.o.d"
  "/root/repo/src/net/ipv4.cpp" "src/net/CMakeFiles/wile_net.dir/ipv4.cpp.o" "gcc" "src/net/CMakeFiles/wile_net.dir/ipv4.cpp.o.d"
  "/root/repo/src/net/llc.cpp" "src/net/CMakeFiles/wile_net.dir/llc.cpp.o" "gcc" "src/net/CMakeFiles/wile_net.dir/llc.cpp.o.d"
  "/root/repo/src/net/udp.cpp" "src/net/CMakeFiles/wile_net.dir/udp.cpp.o" "gcc" "src/net/CMakeFiles/wile_net.dir/udp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wile_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
