# Empty compiler generated dependencies file for wile_net.
# This may be replaced when dependencies are built.
