# Empty dependencies file for wile_ap.
# This may be replaced when dependencies are built.
