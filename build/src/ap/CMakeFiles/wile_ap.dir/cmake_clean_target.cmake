file(REMOVE_RECURSE
  "libwile_ap.a"
)
