file(REMOVE_RECURSE
  "CMakeFiles/wile_ap.dir/access_point.cpp.o"
  "CMakeFiles/wile_ap.dir/access_point.cpp.o.d"
  "libwile_ap.a"
  "libwile_ap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wile_ap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
