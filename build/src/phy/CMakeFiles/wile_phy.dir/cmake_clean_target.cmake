file(REMOVE_RECURSE
  "libwile_phy.a"
)
