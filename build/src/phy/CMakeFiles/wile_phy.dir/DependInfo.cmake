
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/airtime.cpp" "src/phy/CMakeFiles/wile_phy.dir/airtime.cpp.o" "gcc" "src/phy/CMakeFiles/wile_phy.dir/airtime.cpp.o.d"
  "/root/repo/src/phy/ble_phy.cpp" "src/phy/CMakeFiles/wile_phy.dir/ble_phy.cpp.o" "gcc" "src/phy/CMakeFiles/wile_phy.dir/ble_phy.cpp.o.d"
  "/root/repo/src/phy/channel.cpp" "src/phy/CMakeFiles/wile_phy.dir/channel.cpp.o" "gcc" "src/phy/CMakeFiles/wile_phy.dir/channel.cpp.o.d"
  "/root/repo/src/phy/energy.cpp" "src/phy/CMakeFiles/wile_phy.dir/energy.cpp.o" "gcc" "src/phy/CMakeFiles/wile_phy.dir/energy.cpp.o.d"
  "/root/repo/src/phy/rates.cpp" "src/phy/CMakeFiles/wile_phy.dir/rates.cpp.o" "gcc" "src/phy/CMakeFiles/wile_phy.dir/rates.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wile_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
