# Empty dependencies file for wile_phy.
# This may be replaced when dependencies are built.
