file(REMOVE_RECURSE
  "CMakeFiles/wile_phy.dir/airtime.cpp.o"
  "CMakeFiles/wile_phy.dir/airtime.cpp.o.d"
  "CMakeFiles/wile_phy.dir/ble_phy.cpp.o"
  "CMakeFiles/wile_phy.dir/ble_phy.cpp.o.d"
  "CMakeFiles/wile_phy.dir/channel.cpp.o"
  "CMakeFiles/wile_phy.dir/channel.cpp.o.d"
  "CMakeFiles/wile_phy.dir/energy.cpp.o"
  "CMakeFiles/wile_phy.dir/energy.cpp.o.d"
  "CMakeFiles/wile_phy.dir/rates.cpp.o"
  "CMakeFiles/wile_phy.dir/rates.cpp.o.d"
  "libwile_phy.a"
  "libwile_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wile_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
