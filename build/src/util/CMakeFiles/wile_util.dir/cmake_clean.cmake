file(REMOVE_RECURSE
  "CMakeFiles/wile_util.dir/byte_buffer.cpp.o"
  "CMakeFiles/wile_util.dir/byte_buffer.cpp.o.d"
  "CMakeFiles/wile_util.dir/hex.cpp.o"
  "CMakeFiles/wile_util.dir/hex.cpp.o.d"
  "CMakeFiles/wile_util.dir/log.cpp.o"
  "CMakeFiles/wile_util.dir/log.cpp.o.d"
  "CMakeFiles/wile_util.dir/mac_address.cpp.o"
  "CMakeFiles/wile_util.dir/mac_address.cpp.o.d"
  "CMakeFiles/wile_util.dir/pcap.cpp.o"
  "CMakeFiles/wile_util.dir/pcap.cpp.o.d"
  "CMakeFiles/wile_util.dir/rng.cpp.o"
  "CMakeFiles/wile_util.dir/rng.cpp.o.d"
  "libwile_util.a"
  "libwile_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wile_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
