file(REMOVE_RECURSE
  "libwile_util.a"
)
