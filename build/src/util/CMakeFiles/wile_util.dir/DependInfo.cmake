
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/byte_buffer.cpp" "src/util/CMakeFiles/wile_util.dir/byte_buffer.cpp.o" "gcc" "src/util/CMakeFiles/wile_util.dir/byte_buffer.cpp.o.d"
  "/root/repo/src/util/hex.cpp" "src/util/CMakeFiles/wile_util.dir/hex.cpp.o" "gcc" "src/util/CMakeFiles/wile_util.dir/hex.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/util/CMakeFiles/wile_util.dir/log.cpp.o" "gcc" "src/util/CMakeFiles/wile_util.dir/log.cpp.o.d"
  "/root/repo/src/util/mac_address.cpp" "src/util/CMakeFiles/wile_util.dir/mac_address.cpp.o" "gcc" "src/util/CMakeFiles/wile_util.dir/mac_address.cpp.o.d"
  "/root/repo/src/util/pcap.cpp" "src/util/CMakeFiles/wile_util.dir/pcap.cpp.o" "gcc" "src/util/CMakeFiles/wile_util.dir/pcap.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/util/CMakeFiles/wile_util.dir/rng.cpp.o" "gcc" "src/util/CMakeFiles/wile_util.dir/rng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
