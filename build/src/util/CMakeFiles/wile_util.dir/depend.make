# Empty dependencies file for wile_util.
# This may be replaced when dependencies are built.
