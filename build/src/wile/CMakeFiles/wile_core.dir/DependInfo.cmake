
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wile/codec.cpp" "src/wile/CMakeFiles/wile_core.dir/codec.cpp.o" "gcc" "src/wile/CMakeFiles/wile_core.dir/codec.cpp.o.d"
  "/root/repo/src/wile/controller.cpp" "src/wile/CMakeFiles/wile_core.dir/controller.cpp.o" "gcc" "src/wile/CMakeFiles/wile_core.dir/controller.cpp.o.d"
  "/root/repo/src/wile/gateway.cpp" "src/wile/CMakeFiles/wile_core.dir/gateway.cpp.o" "gcc" "src/wile/CMakeFiles/wile_core.dir/gateway.cpp.o.d"
  "/root/repo/src/wile/receiver.cpp" "src/wile/CMakeFiles/wile_core.dir/receiver.cpp.o" "gcc" "src/wile/CMakeFiles/wile_core.dir/receiver.cpp.o.d"
  "/root/repo/src/wile/scan_list.cpp" "src/wile/CMakeFiles/wile_core.dir/scan_list.cpp.o" "gcc" "src/wile/CMakeFiles/wile_core.dir/scan_list.cpp.o.d"
  "/root/repo/src/wile/sender.cpp" "src/wile/CMakeFiles/wile_core.dir/sender.cpp.o" "gcc" "src/wile/CMakeFiles/wile_core.dir/sender.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wile_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/wile_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/wile_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/dot11/CMakeFiles/wile_dot11.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wile_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/wile_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/wile_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wile_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
