file(REMOVE_RECURSE
  "CMakeFiles/wile_core.dir/codec.cpp.o"
  "CMakeFiles/wile_core.dir/codec.cpp.o.d"
  "CMakeFiles/wile_core.dir/controller.cpp.o"
  "CMakeFiles/wile_core.dir/controller.cpp.o.d"
  "CMakeFiles/wile_core.dir/gateway.cpp.o"
  "CMakeFiles/wile_core.dir/gateway.cpp.o.d"
  "CMakeFiles/wile_core.dir/receiver.cpp.o"
  "CMakeFiles/wile_core.dir/receiver.cpp.o.d"
  "CMakeFiles/wile_core.dir/scan_list.cpp.o"
  "CMakeFiles/wile_core.dir/scan_list.cpp.o.d"
  "CMakeFiles/wile_core.dir/sender.cpp.o"
  "CMakeFiles/wile_core.dir/sender.cpp.o.d"
  "libwile_core.a"
  "libwile_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wile_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
