file(REMOVE_RECURSE
  "libwile_core.a"
)
