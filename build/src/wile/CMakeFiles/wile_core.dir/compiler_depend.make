# Empty compiler generated dependencies file for wile_core.
# This may be replaced when dependencies are built.
