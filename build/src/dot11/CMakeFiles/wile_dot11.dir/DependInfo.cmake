
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dot11/ccmp.cpp" "src/dot11/CMakeFiles/wile_dot11.dir/ccmp.cpp.o" "gcc" "src/dot11/CMakeFiles/wile_dot11.dir/ccmp.cpp.o.d"
  "/root/repo/src/dot11/eapol.cpp" "src/dot11/CMakeFiles/wile_dot11.dir/eapol.cpp.o" "gcc" "src/dot11/CMakeFiles/wile_dot11.dir/eapol.cpp.o.d"
  "/root/repo/src/dot11/frame.cpp" "src/dot11/CMakeFiles/wile_dot11.dir/frame.cpp.o" "gcc" "src/dot11/CMakeFiles/wile_dot11.dir/frame.cpp.o.d"
  "/root/repo/src/dot11/frame_control.cpp" "src/dot11/CMakeFiles/wile_dot11.dir/frame_control.cpp.o" "gcc" "src/dot11/CMakeFiles/wile_dot11.dir/frame_control.cpp.o.d"
  "/root/repo/src/dot11/ie.cpp" "src/dot11/CMakeFiles/wile_dot11.dir/ie.cpp.o" "gcc" "src/dot11/CMakeFiles/wile_dot11.dir/ie.cpp.o.d"
  "/root/repo/src/dot11/mac_header.cpp" "src/dot11/CMakeFiles/wile_dot11.dir/mac_header.cpp.o" "gcc" "src/dot11/CMakeFiles/wile_dot11.dir/mac_header.cpp.o.d"
  "/root/repo/src/dot11/mgmt.cpp" "src/dot11/CMakeFiles/wile_dot11.dir/mgmt.cpp.o" "gcc" "src/dot11/CMakeFiles/wile_dot11.dir/mgmt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wile_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/wile_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
