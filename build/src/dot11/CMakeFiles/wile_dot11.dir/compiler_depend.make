# Empty compiler generated dependencies file for wile_dot11.
# This may be replaced when dependencies are built.
