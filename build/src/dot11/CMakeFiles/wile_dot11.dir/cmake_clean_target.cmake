file(REMOVE_RECURSE
  "libwile_dot11.a"
)
