file(REMOVE_RECURSE
  "CMakeFiles/wile_dot11.dir/ccmp.cpp.o"
  "CMakeFiles/wile_dot11.dir/ccmp.cpp.o.d"
  "CMakeFiles/wile_dot11.dir/eapol.cpp.o"
  "CMakeFiles/wile_dot11.dir/eapol.cpp.o.d"
  "CMakeFiles/wile_dot11.dir/frame.cpp.o"
  "CMakeFiles/wile_dot11.dir/frame.cpp.o.d"
  "CMakeFiles/wile_dot11.dir/frame_control.cpp.o"
  "CMakeFiles/wile_dot11.dir/frame_control.cpp.o.d"
  "CMakeFiles/wile_dot11.dir/ie.cpp.o"
  "CMakeFiles/wile_dot11.dir/ie.cpp.o.d"
  "CMakeFiles/wile_dot11.dir/mac_header.cpp.o"
  "CMakeFiles/wile_dot11.dir/mac_header.cpp.o.d"
  "CMakeFiles/wile_dot11.dir/mgmt.cpp.o"
  "CMakeFiles/wile_dot11.dir/mgmt.cpp.o.d"
  "libwile_dot11.a"
  "libwile_dot11.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wile_dot11.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
