file(REMOVE_RECURSE
  "libwile_sim.a"
)
