
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/csma.cpp" "src/sim/CMakeFiles/wile_sim.dir/csma.cpp.o" "gcc" "src/sim/CMakeFiles/wile_sim.dir/csma.cpp.o.d"
  "/root/repo/src/sim/fault.cpp" "src/sim/CMakeFiles/wile_sim.dir/fault.cpp.o" "gcc" "src/sim/CMakeFiles/wile_sim.dir/fault.cpp.o.d"
  "/root/repo/src/sim/medium.cpp" "src/sim/CMakeFiles/wile_sim.dir/medium.cpp.o" "gcc" "src/sim/CMakeFiles/wile_sim.dir/medium.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/sim/CMakeFiles/wile_sim.dir/scheduler.cpp.o" "gcc" "src/sim/CMakeFiles/wile_sim.dir/scheduler.cpp.o.d"
  "/root/repo/src/sim/traffic.cpp" "src/sim/CMakeFiles/wile_sim.dir/traffic.cpp.o" "gcc" "src/sim/CMakeFiles/wile_sim.dir/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wile_util.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/wile_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/dot11/CMakeFiles/wile_dot11.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/wile_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
