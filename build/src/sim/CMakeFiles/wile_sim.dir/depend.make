# Empty dependencies file for wile_sim.
# This may be replaced when dependencies are built.
