file(REMOVE_RECURSE
  "CMakeFiles/wile_sim.dir/csma.cpp.o"
  "CMakeFiles/wile_sim.dir/csma.cpp.o.d"
  "CMakeFiles/wile_sim.dir/fault.cpp.o"
  "CMakeFiles/wile_sim.dir/fault.cpp.o.d"
  "CMakeFiles/wile_sim.dir/medium.cpp.o"
  "CMakeFiles/wile_sim.dir/medium.cpp.o.d"
  "CMakeFiles/wile_sim.dir/scheduler.cpp.o"
  "CMakeFiles/wile_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/wile_sim.dir/traffic.cpp.o"
  "CMakeFiles/wile_sim.dir/traffic.cpp.o.d"
  "libwile_sim.a"
  "libwile_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wile_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
