file(REMOVE_RECURSE
  "CMakeFiles/wile_crypto.dir/aead.cpp.o"
  "CMakeFiles/wile_crypto.dir/aead.cpp.o.d"
  "CMakeFiles/wile_crypto.dir/aes128.cpp.o"
  "CMakeFiles/wile_crypto.dir/aes128.cpp.o.d"
  "CMakeFiles/wile_crypto.dir/aes_modes.cpp.o"
  "CMakeFiles/wile_crypto.dir/aes_modes.cpp.o.d"
  "CMakeFiles/wile_crypto.dir/crc.cpp.o"
  "CMakeFiles/wile_crypto.dir/crc.cpp.o.d"
  "CMakeFiles/wile_crypto.dir/hmac_sha1.cpp.o"
  "CMakeFiles/wile_crypto.dir/hmac_sha1.cpp.o.d"
  "CMakeFiles/wile_crypto.dir/pbkdf2.cpp.o"
  "CMakeFiles/wile_crypto.dir/pbkdf2.cpp.o.d"
  "CMakeFiles/wile_crypto.dir/prf80211.cpp.o"
  "CMakeFiles/wile_crypto.dir/prf80211.cpp.o.d"
  "CMakeFiles/wile_crypto.dir/sha1.cpp.o"
  "CMakeFiles/wile_crypto.dir/sha1.cpp.o.d"
  "libwile_crypto.a"
  "libwile_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wile_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
