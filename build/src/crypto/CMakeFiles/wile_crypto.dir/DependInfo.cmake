
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aead.cpp" "src/crypto/CMakeFiles/wile_crypto.dir/aead.cpp.o" "gcc" "src/crypto/CMakeFiles/wile_crypto.dir/aead.cpp.o.d"
  "/root/repo/src/crypto/aes128.cpp" "src/crypto/CMakeFiles/wile_crypto.dir/aes128.cpp.o" "gcc" "src/crypto/CMakeFiles/wile_crypto.dir/aes128.cpp.o.d"
  "/root/repo/src/crypto/aes_modes.cpp" "src/crypto/CMakeFiles/wile_crypto.dir/aes_modes.cpp.o" "gcc" "src/crypto/CMakeFiles/wile_crypto.dir/aes_modes.cpp.o.d"
  "/root/repo/src/crypto/crc.cpp" "src/crypto/CMakeFiles/wile_crypto.dir/crc.cpp.o" "gcc" "src/crypto/CMakeFiles/wile_crypto.dir/crc.cpp.o.d"
  "/root/repo/src/crypto/hmac_sha1.cpp" "src/crypto/CMakeFiles/wile_crypto.dir/hmac_sha1.cpp.o" "gcc" "src/crypto/CMakeFiles/wile_crypto.dir/hmac_sha1.cpp.o.d"
  "/root/repo/src/crypto/pbkdf2.cpp" "src/crypto/CMakeFiles/wile_crypto.dir/pbkdf2.cpp.o" "gcc" "src/crypto/CMakeFiles/wile_crypto.dir/pbkdf2.cpp.o.d"
  "/root/repo/src/crypto/prf80211.cpp" "src/crypto/CMakeFiles/wile_crypto.dir/prf80211.cpp.o" "gcc" "src/crypto/CMakeFiles/wile_crypto.dir/prf80211.cpp.o.d"
  "/root/repo/src/crypto/sha1.cpp" "src/crypto/CMakeFiles/wile_crypto.dir/sha1.cpp.o" "gcc" "src/crypto/CMakeFiles/wile_crypto.dir/sha1.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wile_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
