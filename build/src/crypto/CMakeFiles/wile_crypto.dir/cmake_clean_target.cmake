file(REMOVE_RECURSE
  "libwile_crypto.a"
)
