# Empty dependencies file for wile_crypto.
# This may be replaced when dependencies are built.
