file(REMOVE_RECURSE
  "CMakeFiles/wile_ble.dir/advertiser.cpp.o"
  "CMakeFiles/wile_ble.dir/advertiser.cpp.o.d"
  "CMakeFiles/wile_ble.dir/link.cpp.o"
  "CMakeFiles/wile_ble.dir/link.cpp.o.d"
  "CMakeFiles/wile_ble.dir/pdu.cpp.o"
  "CMakeFiles/wile_ble.dir/pdu.cpp.o.d"
  "libwile_ble.a"
  "libwile_ble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wile_ble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
