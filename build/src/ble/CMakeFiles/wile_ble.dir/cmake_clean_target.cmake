file(REMOVE_RECURSE
  "libwile_ble.a"
)
