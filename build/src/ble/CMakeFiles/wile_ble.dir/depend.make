# Empty dependencies file for wile_ble.
# This may be replaced when dependencies are built.
