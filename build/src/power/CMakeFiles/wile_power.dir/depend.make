# Empty dependencies file for wile_power.
# This may be replaced when dependencies are built.
