file(REMOVE_RECURSE
  "CMakeFiles/wile_power.dir/devices.cpp.o"
  "CMakeFiles/wile_power.dir/devices.cpp.o.d"
  "CMakeFiles/wile_power.dir/timeline.cpp.o"
  "CMakeFiles/wile_power.dir/timeline.cpp.o.d"
  "CMakeFiles/wile_power.dir/trace_recorder.cpp.o"
  "CMakeFiles/wile_power.dir/trace_recorder.cpp.o.d"
  "libwile_power.a"
  "libwile_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wile_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
