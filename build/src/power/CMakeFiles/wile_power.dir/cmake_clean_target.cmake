file(REMOVE_RECURSE
  "libwile_power.a"
)
