file(REMOVE_RECURSE
  "CMakeFiles/farm_sensors.dir/farm_sensors.cpp.o"
  "CMakeFiles/farm_sensors.dir/farm_sensors.cpp.o.d"
  "farm_sensors"
  "farm_sensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/farm_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
