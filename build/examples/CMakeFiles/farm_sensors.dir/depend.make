# Empty dependencies file for farm_sensors.
# This may be replaced when dependencies are built.
