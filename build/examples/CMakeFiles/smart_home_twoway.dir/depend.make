# Empty dependencies file for smart_home_twoway.
# This may be replaced when dependencies are built.
