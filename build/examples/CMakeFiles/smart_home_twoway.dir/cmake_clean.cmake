file(REMOVE_RECURSE
  "CMakeFiles/smart_home_twoway.dir/smart_home_twoway.cpp.o"
  "CMakeFiles/smart_home_twoway.dir/smart_home_twoway.cpp.o.d"
  "smart_home_twoway"
  "smart_home_twoway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_home_twoway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
