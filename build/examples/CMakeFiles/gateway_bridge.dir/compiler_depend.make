# Empty compiler generated dependencies file for gateway_bridge.
# This may be replaced when dependencies are built.
