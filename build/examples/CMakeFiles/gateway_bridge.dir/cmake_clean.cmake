file(REMOVE_RECURSE
  "CMakeFiles/gateway_bridge.dir/gateway_bridge.cpp.o"
  "CMakeFiles/gateway_bridge.dir/gateway_bridge.cpp.o.d"
  "gateway_bridge"
  "gateway_bridge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gateway_bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
