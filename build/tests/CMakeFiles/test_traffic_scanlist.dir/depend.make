# Empty dependencies file for test_traffic_scanlist.
# This may be replaced when dependencies are built.
