file(REMOVE_RECURSE
  "CMakeFiles/test_traffic_scanlist.dir/test_traffic_scanlist.cpp.o"
  "CMakeFiles/test_traffic_scanlist.dir/test_traffic_scanlist.cpp.o.d"
  "test_traffic_scanlist"
  "test_traffic_scanlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_traffic_scanlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
