# Empty dependencies file for test_ssid_stuffing.
# This may be replaced when dependencies are built.
