file(REMOVE_RECURSE
  "CMakeFiles/test_ssid_stuffing.dir/test_ssid_stuffing.cpp.o"
  "CMakeFiles/test_ssid_stuffing.dir/test_ssid_stuffing.cpp.o.d"
  "test_ssid_stuffing"
  "test_ssid_stuffing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ssid_stuffing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
