# Empty dependencies file for test_wile_codec.
# This may be replaced when dependencies are built.
