file(REMOVE_RECURSE
  "CMakeFiles/test_wile_codec.dir/test_wile_codec.cpp.o"
  "CMakeFiles/test_wile_codec.dir/test_wile_codec.cpp.o.d"
  "test_wile_codec"
  "test_wile_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wile_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
