file(REMOVE_RECURSE
  "CMakeFiles/test_pcap_roundtrip.dir/test_pcap_roundtrip.cpp.o"
  "CMakeFiles/test_pcap_roundtrip.dir/test_pcap_roundtrip.cpp.o.d"
  "test_pcap_roundtrip"
  "test_pcap_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pcap_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
