# Empty dependencies file for test_pcap_roundtrip.
# This may be replaced when dependencies are built.
