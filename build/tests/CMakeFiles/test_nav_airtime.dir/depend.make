# Empty dependencies file for test_nav_airtime.
# This may be replaced when dependencies are built.
