file(REMOVE_RECURSE
  "CMakeFiles/test_nav_airtime.dir/test_nav_airtime.cpp.o"
  "CMakeFiles/test_nav_airtime.dir/test_nav_airtime.cpp.o.d"
  "test_nav_airtime"
  "test_nav_airtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nav_airtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
