# Empty compiler generated dependencies file for test_rts_cts.
# This may be replaced when dependencies are built.
