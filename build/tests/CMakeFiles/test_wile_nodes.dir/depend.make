# Empty dependencies file for test_wile_nodes.
# This may be replaced when dependencies are built.
