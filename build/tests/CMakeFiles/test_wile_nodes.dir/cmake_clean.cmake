file(REMOVE_RECURSE
  "CMakeFiles/test_wile_nodes.dir/test_wile_nodes.cpp.o"
  "CMakeFiles/test_wile_nodes.dir/test_wile_nodes.cpp.o.d"
  "test_wile_nodes"
  "test_wile_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wile_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
