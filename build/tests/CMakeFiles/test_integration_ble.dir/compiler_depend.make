# Empty compiler generated dependencies file for test_integration_ble.
# This may be replaced when dependencies are built.
