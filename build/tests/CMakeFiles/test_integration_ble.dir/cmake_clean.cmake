file(REMOVE_RECURSE
  "CMakeFiles/test_integration_ble.dir/test_integration_ble.cpp.o"
  "CMakeFiles/test_integration_ble.dir/test_integration_ble.cpp.o.d"
  "test_integration_ble"
  "test_integration_ble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_ble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
