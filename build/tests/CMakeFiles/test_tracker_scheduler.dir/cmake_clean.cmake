file(REMOVE_RECURSE
  "CMakeFiles/test_tracker_scheduler.dir/test_tracker_scheduler.cpp.o"
  "CMakeFiles/test_tracker_scheduler.dir/test_tracker_scheduler.cpp.o.d"
  "test_tracker_scheduler"
  "test_tracker_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tracker_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
