# Empty dependencies file for test_tracker_scheduler.
# This may be replaced when dependencies are built.
