# Empty compiler generated dependencies file for test_integration_wile.
# This may be replaced when dependencies are built.
