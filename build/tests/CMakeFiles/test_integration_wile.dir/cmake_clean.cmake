file(REMOVE_RECURSE
  "CMakeFiles/test_integration_wile.dir/test_integration_wile.cpp.o"
  "CMakeFiles/test_integration_wile.dir/test_integration_wile.cpp.o.d"
  "test_integration_wile"
  "test_integration_wile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_wile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
