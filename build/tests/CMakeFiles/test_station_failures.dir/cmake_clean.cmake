file(REMOVE_RECURSE
  "CMakeFiles/test_station_failures.dir/test_station_failures.cpp.o"
  "CMakeFiles/test_station_failures.dir/test_station_failures.cpp.o.d"
  "test_station_failures"
  "test_station_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_station_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
