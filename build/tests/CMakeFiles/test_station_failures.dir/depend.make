# Empty dependencies file for test_station_failures.
# This may be replaced when dependencies are built.
