# Empty dependencies file for test_dot11.
# This may be replaced when dependencies are built.
