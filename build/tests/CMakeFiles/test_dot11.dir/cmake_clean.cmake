file(REMOVE_RECURSE
  "CMakeFiles/test_dot11.dir/test_dot11.cpp.o"
  "CMakeFiles/test_dot11.dir/test_dot11.cpp.o.d"
  "test_dot11"
  "test_dot11.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dot11.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
