file(REMOVE_RECURSE
  "CMakeFiles/test_ble_advertiser.dir/test_ble_advertiser.cpp.o"
  "CMakeFiles/test_ble_advertiser.dir/test_ble_advertiser.cpp.o.d"
  "test_ble_advertiser"
  "test_ble_advertiser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ble_advertiser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
