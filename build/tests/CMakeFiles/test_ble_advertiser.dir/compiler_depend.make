# Empty compiler generated dependencies file for test_ble_advertiser.
# This may be replaced when dependencies are built.
