file(REMOVE_RECURSE
  "CMakeFiles/test_reliable_mode.dir/test_reliable_mode.cpp.o"
  "CMakeFiles/test_reliable_mode.dir/test_reliable_mode.cpp.o.d"
  "test_reliable_mode"
  "test_reliable_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reliable_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
