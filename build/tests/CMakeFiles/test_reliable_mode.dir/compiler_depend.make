# Empty compiler generated dependencies file for test_reliable_mode.
# This may be replaced when dependencies are built.
