file(REMOVE_RECURSE
  "CMakeFiles/test_integration_wifi.dir/test_integration_wifi.cpp.o"
  "CMakeFiles/test_integration_wifi.dir/test_integration_wifi.cpp.o.d"
  "test_integration_wifi"
  "test_integration_wifi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_wifi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
