# Empty compiler generated dependencies file for test_integration_wifi.
# This may be replaced when dependencies are built.
