# Empty compiler generated dependencies file for test_system_story.
# This may be replaced when dependencies are built.
