file(REMOVE_RECURSE
  "CMakeFiles/test_system_story.dir/test_system_story.cpp.o"
  "CMakeFiles/test_system_story.dir/test_system_story.cpp.o.d"
  "test_system_story"
  "test_system_story.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_system_story.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
