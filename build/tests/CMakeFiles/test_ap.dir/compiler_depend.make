# Empty compiler generated dependencies file for test_ap.
# This may be replaced when dependencies are built.
