file(REMOVE_RECURSE
  "CMakeFiles/test_ap.dir/test_ap.cpp.o"
  "CMakeFiles/test_ap.dir/test_ap.cpp.o.d"
  "test_ap"
  "test_ap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
