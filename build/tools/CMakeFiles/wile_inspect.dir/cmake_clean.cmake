file(REMOVE_RECURSE
  "CMakeFiles/wile_inspect.dir/wile_inspect.cpp.o"
  "CMakeFiles/wile_inspect.dir/wile_inspect.cpp.o.d"
  "wile_inspect"
  "wile_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wile_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
