# Empty compiler generated dependencies file for wile_inspect.
# This may be replaced when dependencies are built.
